"""Process-wide chaos activation, mirroring :mod:`repro.obs.collect`.

Sweep workers can't reach into an experiment function to hand it a
chaos schedule, so activation follows the metrics-collection pattern:
the worker calls :func:`activate` before invoking the experiment
function, every testbed constructor calls :func:`attach_testbed` (a
no-op single check when chaos is inactive), and the worker calls
:func:`deactivate` afterwards to harvest what happened.

Activation state is per-process; with process-pool sweeps each worker
activates independently, which is exactly the isolation wanted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.chaos.invariants import MODES, InvariantMonitor, InvariantViolation
from repro.chaos.schedule import SCENARIOS, ChaosInjector, build_scenario


@dataclass
class ChaosSnapshot:
    """What one activation window saw: faults fired, violations found."""

    scenario: Optional[str] = None
    invariants: Optional[str] = None
    faults_injected: int = 0
    faults_cleared: int = 0
    violations: List[InvariantViolation] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.violations


@dataclass
class _ChaosState:
    scenario: Optional[str]
    invariants: Optional[str]
    injectors: List[ChaosInjector] = field(default_factory=list)
    monitors: List[InvariantMonitor] = field(default_factory=list)


_ACTIVE: Optional[_ChaosState] = None


def chaos_active() -> bool:
    """True while an activation window is open in this process."""
    return _ACTIVE is not None


def activate(chaos: Optional[str] = None, invariants: Optional[str] = None) -> None:
    """Open an activation window.

    ``chaos`` names a scenario from
    :data:`~repro.chaos.schedule.SCENARIOS` to arm on every testbed
    built inside the window; ``invariants`` (``"warn"`` or
    ``"fail-fast"``) attaches an :class:`InvariantMonitor` to each.
    Either may be None; activating with both None is a no-op window.
    """
    global _ACTIVE
    if _ACTIVE is not None:
        raise RuntimeError("chaos runtime already active")
    if chaos is not None and chaos not in SCENARIOS:
        raise ValueError(
            f"unknown chaos scenario {chaos!r}; choose from {', '.join(SCENARIOS)}"
        )
    if invariants is not None and invariants not in MODES:
        raise ValueError(f"invariants mode must be one of {MODES}, got {invariants!r}")
    _ACTIVE = _ChaosState(scenario=chaos, invariants=invariants)


def attach_testbed(bed) -> None:
    """Arm the active scenario/monitors on a freshly built testbed.

    Called at the end of every testbed constructor; a single ``is
    None`` check when chaos is inactive.
    """
    if _ACTIVE is None:
        return
    injector: Optional[ChaosInjector] = None
    if _ACTIVE.scenario is not None:
        schedule = build_scenario(_ACTIVE.scenario)
        injector = ChaosInjector(bed, schedule)
        injector.arm()
        _ACTIVE.injectors.append(injector)
        bed.chaos = injector
    if _ACTIVE.invariants is not None:
        monitor = InvariantMonitor(bed, mode=_ACTIVE.invariants, injector=injector)
        _ACTIVE.monitors.append(monitor)
        bed.invariant_monitor = monitor


def deactivate(strict: bool = True) -> Optional[ChaosSnapshot]:
    """Close the window, finalize monitors, return the snapshot.

    ``strict`` False skips the monitors' final sweep (the run already
    failed; end-state invariants would mask the original error).
    Returns None when no window was open.
    """
    global _ACTIVE
    state = _ACTIVE
    _ACTIVE = None
    if state is None:
        return None
    snapshot = ChaosSnapshot(scenario=state.scenario, invariants=state.invariants)
    for injector in state.injectors:
        snapshot.faults_injected += injector.injected
        snapshot.faults_cleared += injector.cleared
    for monitor in state.monitors:
        snapshot.violations.extend(monitor.finalize(strict=strict))
    return snapshot
