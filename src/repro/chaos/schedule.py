"""Chaos schedules: named fault scenarios and their runtime injector.

A :class:`ChaosSchedule` is a frozen, typed list of faults with start
offsets; :class:`ChaosInjector` arms it against a live testbed, firing
each fault's inject/clear at the scheduled virtual times and recording
every transition in the policy server's audit trail
(``chaos-fault-injected`` / ``chaos-fault-cleared``) and — when tracing
is armed — as trace incidents.

:func:`build_scenario` materialises the named scenarios the CLI's
``--chaos`` flag and the chaos experiment share; ``"compound"`` is the
paper-motivated worst case (client link flap plus policy-server outage
during a flood).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

from repro.chaos.faults import (
    AgentCrash,
    LinkFlap,
    PacketCorruption,
    PolicyServerOutage,
    SwitchPortFail,
)
from repro.obs.tracing.watchdog import Incident
from repro.policy.audit import AuditEventKind
from repro.sim.timer import Timer

#: Scenario names accepted by ``build_scenario`` / ``--chaos``.
SCENARIOS: Tuple[str, ...] = (
    "none",
    "link-flap",
    "port-fail",
    "corruption",
    "policy-outage",
    "agent-crash",
    "compound",
)


@dataclass(frozen=True)
class ChaosSchedule:
    """A named, ordered set of fault injections."""

    name: str
    faults: Tuple[Any, ...] = ()

    def __post_init__(self) -> None:
        for fault in self.faults:
            if not hasattr(fault, "inject") or not hasattr(fault, "clear"):
                raise TypeError(f"{fault!r} is not a chaos fault")


def build_scenario(
    name: str, start: float = 0.05, duration: float = 0.1
) -> ChaosSchedule:
    """The named scenario with faults offset ``start`` seconds from arming."""
    if name == "none":
        return ChaosSchedule(name="none", faults=())
    if name == "link-flap":
        faults: Tuple[Any, ...] = (
            LinkFlap(station="client", start=start, duration=duration, mode="down"),
        )
    elif name == "port-fail":
        faults = (SwitchPortFail(station="client", start=start, duration=duration),)
    elif name == "corruption":
        faults = (PacketCorruption(station="target", start=start, duration=duration),)
    elif name == "policy-outage":
        faults = (PolicyServerOutage(start=start, duration=duration),)
    elif name == "agent-crash":
        faults = (AgentCrash(station="target", start=start),)
    elif name == "compound":
        faults = (
            LinkFlap(station="client", start=start, duration=duration, mode="down"),
            PolicyServerOutage(start=start, duration=duration),
        )
    else:
        raise ValueError(
            f"unknown chaos scenario {name!r}; choose from {', '.join(SCENARIOS)}"
        )
    return ChaosSchedule(name=name, faults=faults)


@dataclass
class FaultTransition:
    """One injector action, for the episode log."""

    time: float
    action: str  # "inject" | "clear"
    kind: str
    subject: str


class ChaosInjector:
    """Arms a schedule's faults against one live testbed.

    The injector owns the timers and the bookkeeping: which faults are
    currently active (invariant monitors consult this to suppress
    convergence checks mid-fault), when the last one cleared, and the
    full transition log.
    """

    def __init__(self, bed, schedule: ChaosSchedule):
        self.bed = bed
        self.schedule = schedule
        self.active: List[Any] = []
        self.log: List[FaultTransition] = []
        self.injected = 0
        self.cleared = 0
        self.last_cleared_at: Optional[float] = None
        self._timers: List[Timer] = []
        self._armed = False

    @property
    def quiescent(self) -> bool:
        """True when no fault is currently active."""
        return not self.active

    def arm(self) -> None:
        """Schedule every fault relative to the current virtual time."""
        if self._armed:
            raise RuntimeError("chaos injector already armed")
        self._armed = True
        sim = self.bed.sim
        for fault in self.schedule.faults:
            timer = Timer(sim, self._inject, fault)
            timer.start(max(0.0, fault.start))
            self._timers.append(timer)

    def disarm(self) -> None:
        """Stop pending timers and clear any still-active faults."""
        for timer in self._timers:
            timer.stop()
        self._timers.clear()
        for fault in list(self.active):
            self._clear(fault)

    # ------------------------------------------------------------------

    def _inject(self, fault) -> None:
        fault.inject(self.bed)
        self.active.append(fault)
        self.injected += 1
        now = self.bed.sim.now
        self.log.append(FaultTransition(now, "inject", fault.kind, fault.subject))
        self._record(AuditEventKind.CHAOS_FAULT_INJECTED, fault)
        if fault.duration is not None:
            timer = Timer(self.bed.sim, self._clear, fault)
            timer.start(fault.duration)
            self._timers.append(timer)

    def _clear(self, fault) -> None:
        fault.clear(self.bed)
        self.active = [active for active in self.active if active is not fault]
        self.cleared += 1
        now = self.bed.sim.now
        self.last_cleared_at = now
        self.log.append(FaultTransition(now, "clear", fault.kind, fault.subject))
        self._record(AuditEventKind.CHAOS_FAULT_CLEARED, fault)

    def _record(self, event_kind: AuditEventKind, fault) -> None:
        now = self.bed.sim.now
        server = getattr(self.bed, "policy_server", None)
        if server is not None:
            server.audit.record(
                now, event_kind, fault.subject, fault=fault.kind, **fault.detail()
            )
        tracer = self.bed.sim.tracer
        if tracer.active or tracer.hot:
            tracer.record_incident(
                Incident(
                    kind=event_kind.value,
                    source=fault.subject,
                    time=now,
                    detail={"fault": fault.kind, **fault.detail()},
                )
            )
