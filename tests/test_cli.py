"""Tests for the ``python -m repro.experiments`` command-line interface."""

import pytest

#: Full end-to-end regenerations; excluded from the default fast tier
#: (see [tool.pytest.ini_options] in pyproject.toml).
pytestmark = pytest.mark.slow

from repro.experiments import __main__ as cli
from repro.experiments import runner


def _stub_entry(output="FULL-OUTPUT", quick_output="QUICK-OUTPUT"):
    """An ExperimentSpec entry following the RunConfig contract."""

    def entry(config):
        quick = config.preset is not None and config.preset.name == "quick"
        return quick_output if quick else output

    return entry


def _recording_run(seen):
    """A run_experiment_result stand-in that records its RunConfig."""

    def fake_run(experiment_id, quick=False, config=None, **legacy):
        seen.append((experiment_id, config))
        return "output"

    return fake_run


class TestCli:
    def test_unknown_id_raises(self):
        with pytest.raises(KeyError):
            runner.run_experiment("nonsense")

    def test_help_exits_zero(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli.main(["--help"])
        assert excinfo.value.code == 0
        assert "fig2" in capsys.readouterr().out

    def test_single_experiment_via_stubbed_registry(self, monkeypatch, capsys):
        spec = runner.ExperimentSpec("stub", "a stub", _stub_entry())
        monkeypatch.setattr(runner, "REGISTRY", {"stub": spec})
        monkeypatch.setattr(cli, "run_experiment_result", runner.run_experiment_result)
        monkeypatch.setattr(cli, "experiment_ids", runner.experiment_ids)
        assert cli.main(["stub", "--no-progress"]) == 0
        out = capsys.readouterr().out
        assert "FULL-OUTPUT" in out

    def test_quick_flag_selects_quick_runner(self, monkeypatch, capsys):
        spec = runner.ExperimentSpec("stub", "a stub", _stub_entry())
        monkeypatch.setattr(runner, "REGISTRY", {"stub": spec})
        monkeypatch.setattr(cli, "run_experiment_result", runner.run_experiment_result)
        monkeypatch.setattr(cli, "experiment_ids", runner.experiment_ids)
        assert cli.main(["stub", "--quick", "--no-progress"]) == 0
        assert "QUICK-OUTPUT" in capsys.readouterr().out

    def test_all_expands_to_every_experiment(self, monkeypatch, capsys):
        seen = []
        monkeypatch.setattr(cli, "run_experiment_result", _recording_run(seen))
        assert cli.main(["all", "--no-progress"]) == 0
        assert [experiment_id for experiment_id, _ in seen] == runner.experiment_ids()

    def test_progress_goes_to_stderr(self, monkeypatch, capsys):
        def fake_run(experiment_id, quick=False, config=None, **legacy):
            if config.progress is not None:
                config.progress("step one")
            return "output"

        monkeypatch.setattr(cli, "run_experiment_result", fake_run)
        monkeypatch.setattr(cli, "experiment_ids", lambda: ["stub"])
        cli.main(["stub"])
        captured = capsys.readouterr()
        assert "step one" in captured.err
        assert "step one" not in captured.out

    def test_registry_titles_are_unique_and_nonempty(self):
        titles = [spec.title for spec in runner.REGISTRY.values()]
        assert all(titles)
        assert len(set(titles)) == len(titles)

    def test_json_flag_archives_results(self, monkeypatch, capsys, tmp_path):
        import dataclasses
        import json

        @dataclasses.dataclass
        class StubResult:
            value: int = 7

            def table(self):
                return "STUB-TABLE"

        spec = runner.ExperimentSpec("stub", "a stub", lambda config: StubResult())
        monkeypatch.setattr(runner, "REGISTRY", {"stub": spec})
        monkeypatch.setattr(cli, "run_experiment_result", runner.run_experiment_result)
        monkeypatch.setattr(cli, "experiment_ids", runner.experiment_ids)
        out_dir = tmp_path / "results"
        assert cli.main(["stub", "--no-progress", "--json", str(out_dir)]) == 0
        captured = capsys.readouterr()
        assert "STUB-TABLE" in captured.out
        payload = json.loads((out_dir / "stub.json").read_text())
        assert payload == {
            "schema_version": 1,
            "result": {"_type": "StubResult", "value": 7},
        }

    def test_render_result_handles_lists_and_strings(self):
        class WithTable:
            def table(self):
                return "T"

        assert runner.render_result("plain") == "plain"
        assert runner.render_result([WithTable(), WithTable()]) == "T\n\nT"

    def test_jobs_flag_reaches_runner(self, monkeypatch, capsys):
        seen = []
        monkeypatch.setattr(cli, "run_experiment_result", _recording_run(seen))
        monkeypatch.setattr(cli, "experiment_ids", lambda: ["stub"])
        assert cli.main(["stub", "--no-progress", "--jobs", "3"]) == 0
        assert seen[0][1].jobs == 3

    def test_jobs_defaults_from_env_var(self, monkeypatch, capsys):
        seen = []
        monkeypatch.setattr(cli, "run_experiment_result", _recording_run(seen))
        monkeypatch.setattr(cli, "experiment_ids", lambda: ["stub"])
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert cli.main(["stub", "--no-progress"]) == 0
        assert seen[0][1].jobs == 5

    def test_no_compiled_matcher_flag_disables_fast_path(self, monkeypatch, capsys):
        from repro.firewall import compiled

        original = compiled.compiled_enabled()
        monkeypatch.setattr(cli, "run_experiment_result", lambda *a, **k: "output")
        monkeypatch.setattr(cli, "experiment_ids", lambda: ["stub"])
        try:
            assert cli.main(["stub", "--no-progress", "--no-compiled-matcher"]) == 0
            assert not compiled.compiled_enabled()
        finally:
            compiled.set_compiled_enabled(original)

    def test_compiled_matcher_stays_on_by_default(self, monkeypatch, capsys):
        from repro.firewall import compiled

        original = compiled.compiled_enabled()
        monkeypatch.setattr(cli, "run_experiment_result", lambda *a, **k: "output")
        monkeypatch.setattr(cli, "experiment_ids", lambda: ["stub"])
        try:
            compiled.set_compiled_enabled(True)
            assert cli.main(["stub", "--no-progress"]) == 0
            assert compiled.compiled_enabled()
        finally:
            compiled.set_compiled_enabled(original)

    def test_metrics_flag_writes_series_files(self, monkeypatch, capsys, tmp_path):
        import json

        spec = runner.ExperimentSpec("stub", "a stub", _stub_entry())
        monkeypatch.setattr(runner, "REGISTRY", {"stub": spec})
        monkeypatch.setattr(cli, "run_experiment_result", runner.run_experiment_result)
        monkeypatch.setattr(cli, "experiment_ids", runner.experiment_ids)
        out_dir = tmp_path / "metrics"
        assert cli.main(["stub", "--no-progress", "--metrics", str(out_dir)]) == 0
        payload = json.loads((out_dir / "stub_metrics.json").read_text())
        assert payload["schema_version"] == 1
        assert payload["result"]["_type"] == "ExperimentMetrics"
        assert (out_dir / "stub_metrics.csv").read_text().startswith("point,run,")


def _profiled_sweep_entry(config):
    """A stub entry that actually sweeps, so profiles have content."""
    from repro.core.parallel import SweepPointSpec

    executor = config.executor()
    executor.run([SweepPointSpec(label="p", fn=_profiled_point, kwargs={})])
    return "PROFILED-OUTPUT"


def _cli_tick():
    pass


def _profiled_point() -> bool:
    from repro.obs.profiling import collect as profile_collect
    from repro.sim.engine import Simulator

    sim = Simulator()
    attached = profile_collect.attach_simulator(sim)
    sim.schedule(0.01, _cli_tick)
    sim.run(until=0.02)
    return attached is not None


class TestProfileFlag:
    def _patch_stub(self, monkeypatch, entry):
        spec = runner.ExperimentSpec("stub", "a stub", entry)
        monkeypatch.setattr(runner, "REGISTRY", {"stub": spec})
        monkeypatch.setattr(cli, "run_experiment_result", runner.run_experiment_result)
        monkeypatch.setattr(cli, "experiment_ids", runner.experiment_ids)

    def test_profile_flag_writes_profile_files(self, monkeypatch, capsys, tmp_path):
        import json

        self._patch_stub(monkeypatch, _profiled_sweep_entry)
        out_dir = tmp_path / "profiles"
        assert (
            cli.main(
                ["stub", "--no-progress", "--jobs", "1", "--profile", str(out_dir)]
            )
            == 0
        )
        captured = capsys.readouterr()
        assert "PROFILED-OUTPUT" in captured.out
        # The hotspot table lands on stderr, not in the table stream.
        assert "Hotspots" in captured.err
        assert "Hotspots" not in captured.out
        payload = json.loads((out_dir / "stub_profile.json").read_text())
        assert payload["schema_version"] == 1
        assert payload["result"]["_type"] == "ExperimentProfile"
        assert payload["result"]["points"][0]["label"] == "p"
        collapsed = (out_dir / "stub_profile.collapsed").read_text()
        assert collapsed.startswith("sim.run ")

    def test_profile_top_limits_the_table(self, monkeypatch, capsys, tmp_path):
        self._patch_stub(monkeypatch, _profiled_sweep_entry)
        out_dir = tmp_path / "profiles"
        assert (
            cli.main(
                [
                    "stub",
                    "--no-progress",
                    "--jobs",
                    "1",
                    "--profile",
                    str(out_dir),
                    "--profile-top",
                    "1",
                ]
            )
            == 0
        )
        err = capsys.readouterr().err
        assert "more component(s)" in err

    def test_profile_top_validated(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli.main(["stub", "--profile-top", "0"])
        assert excinfo.value.code == 2
        assert "--profile-top" in capsys.readouterr().err

    def test_without_the_flag_no_profiling_happens(self, monkeypatch, capsys, tmp_path):
        self._patch_stub(monkeypatch, _profiled_sweep_entry)
        assert cli.main(["stub", "--no-progress", "--jobs", "1"]) == 0
        captured = capsys.readouterr()
        assert "Hotspots" not in captured.err
        assert list(tmp_path.iterdir()) == []
