"""Tests for experiment-result JSON serialization."""

import json
import math

import pytest

from repro.core.methodology import MinimumFloodResult
from repro.core.testbed import DeviceKind
from repro.experiments.fig2_bandwidth import Fig2Result
from repro.experiments.results import serialize, to_json, write_json


class TestSerialize:
    def test_dataclass_becomes_tagged_dict(self):
        result = MinimumFloodResult(rule_depth=64, flood_allowed=True, rate_pps=4500.0)
        record = serialize(result)
        assert record["_type"] == "MinimumFloodResult"
        assert record["rule_depth"] == 64
        assert record["rate_pps"] == 4500.0

    def test_enum_becomes_value(self):
        assert serialize(DeviceKind.EFW) == "efw"

    def test_nan_and_inf_become_null(self):
        assert serialize(float("nan")) is None
        assert serialize(float("inf")) is None

    def test_tuples_become_lists(self):
        assert serialize(((1, 2.5), (3, 4.5))) == [[1, 2.5], [3, 4.5]]

    def test_nested_result_round_trips_through_json(self):
        result = Fig2Result(series={"EFW": [(1, 94.8), (64, 47.8)]})
        parsed = json.loads(to_json(result))
        assert parsed["series"]["EFW"] == [[1, 94.8], [64, 47.8]]
        assert parsed["_type"] == "Fig2Result"

    def test_non_string_dict_keys_stringified(self):
        assert serialize({64: "deep"}) == {"64": "deep"}

    def test_write_json(self, tmp_path):
        path = tmp_path / "out.json"
        write_json({"a": (1, 2)}, str(path))
        assert json.loads(path.read_text()) == {"a": [1, 2]}

    def test_plain_object_falls_back_to_dict(self):
        class Plain:
            def __init__(self):
                self.x = 7

        record = serialize(Plain())
        assert record == {"_type": "Plain", "x": 7}
