"""Tests for experiment-result JSON serialization."""

import json
import math

import pytest

from repro.core.methodology import MinimumFloodResult
from repro.core.testbed import DeviceKind
from repro.experiments.fig2_bandwidth import Fig2Result
from repro.experiments.results import (
    RESULTS_SCHEMA_VERSION,
    deserialize,
    from_json,
    read_json,
    serialize,
    to_json,
    write_json,
)


class TestSerialize:
    def test_dataclass_becomes_tagged_dict(self):
        result = MinimumFloodResult(rule_depth=64, flood_allowed=True, rate_pps=4500.0)
        record = serialize(result)
        assert record["_type"] == "MinimumFloodResult"
        assert record["rule_depth"] == 64
        assert record["rate_pps"] == 4500.0

    def test_enum_becomes_value(self):
        assert serialize(DeviceKind.EFW) == "efw"

    def test_nan_and_inf_become_null(self):
        assert serialize(float("nan")) is None
        assert serialize(float("inf")) is None

    def test_tuples_become_lists(self):
        assert serialize(((1, 2.5), (3, 4.5))) == [[1, 2.5], [3, 4.5]]

    def test_nested_result_round_trips_through_json(self):
        result = Fig2Result(series={"EFW": [(1, 94.8), (64, 47.8)]})
        parsed = json.loads(to_json(result))
        assert parsed["schema_version"] == RESULTS_SCHEMA_VERSION
        assert parsed["result"]["series"]["EFW"] == [[1, 94.8], [64, 47.8]]
        assert parsed["result"]["_type"] == "Fig2Result"

    def test_non_string_dict_keys_stringified(self):
        assert serialize({64: "deep"}) == {"64": "deep"}

    def test_write_json(self, tmp_path):
        path = tmp_path / "out.json"
        write_json({"a": (1, 2)}, str(path))
        assert json.loads(path.read_text()) == {
            "schema_version": RESULTS_SCHEMA_VERSION,
            "result": {"a": [1, 2]},
        }

    def test_plain_object_falls_back_to_dict(self):
        class Plain:
            def __init__(self):
                self.x = 7

        record = serialize(Plain())
        assert record == {"_type": "Plain", "x": 7}


class TestDeserialize:
    def test_dataclass_round_trip(self):
        result = MinimumFloodResult(rule_depth=64, flood_allowed=True, rate_pps=4500.0)
        rebuilt = deserialize(serialize(result))
        assert isinstance(rebuilt, MinimumFloodResult)
        assert rebuilt == result

    def test_nested_result_round_trip_reserializes_identically(self):
        result = Fig2Result(series={"EFW": [(1, 94.8), (64, 47.8)]})
        payload = serialize(result)
        rebuilt = deserialize(payload)
        assert isinstance(rebuilt, Fig2Result)
        # Tuples come back as lists; re-serializing reproduces the payload.
        assert serialize(rebuilt) == payload

    def test_from_json_accepts_envelope(self):
        result = Fig2Result(series={"ADF": [(1, 90.0)]})
        rebuilt = from_json(to_json(result))
        assert isinstance(rebuilt, Fig2Result)
        assert to_json(rebuilt) == to_json(result)

    def test_read_json_inverts_write_json(self, tmp_path):
        path = tmp_path / "archive.json"
        result = MinimumFloodResult(rule_depth=8, flood_allowed=False, rate_pps=9000.0)
        write_json(result, str(path))
        assert read_json(str(path)) == result

    def test_future_schema_version_rejected(self):
        with pytest.raises(ValueError):
            deserialize({"schema_version": RESULTS_SCHEMA_VERSION + 1, "result": {}})

    def test_unknown_type_tag_survives_as_dict(self):
        payload = {"_type": "NotARealResult", "x": 1}
        assert deserialize(payload) == payload

    def test_extra_keys_from_newer_revisions_ignored(self):
        payload = serialize(MinimumFloodResult(rule_depth=1, flood_allowed=True))
        payload["added_in_v2"] = "surprise"
        rebuilt = deserialize(payload)
        assert isinstance(rebuilt, MinimumFloodResult)
        assert rebuilt.rule_depth == 1

    def test_metrics_snapshot_round_trip(self):
        from repro.obs.collect import ExperimentMetrics, PointMetrics
        from repro.obs.sampler import MetricSeries, MetricsSnapshot

        snapshot = MetricsSnapshot(
            interval=0.01,
            series=[
                MetricSeries(
                    name="queue_depth",
                    kind="gauge",
                    labels={"queue": "target.efw.proc"},
                    points=[(0.0, 0.0), (0.01, 3.0)],
                    final=3.0,
                )
            ],
        )
        experiment = ExperimentMetrics(
            experiment_id="fig3a",
            interval=0.01,
            points=[PointMetrics(label="p", snapshots=[snapshot])],
        )
        rebuilt = deserialize(serialize(experiment))
        assert isinstance(rebuilt, ExperimentMetrics)
        assert rebuilt.points[0].snapshots[0].series[0].name == "queue_depth"
        assert serialize(rebuilt) == serialize(experiment)
