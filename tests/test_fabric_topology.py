"""Tests for the multi-switch FabricTopology (and its star degeneracy)."""

import pytest

from repro.net.addresses import Ipv4Address, MacAddress
from repro.net.packet import EthernetFrame, Ipv4Packet, UdpDatagram
from repro.net.topology import DEFAULT_TRUNK_BPS, FabricTopology, StarTopology
from repro.sim import units
from repro.sim.engine import Simulator


class Sink:
    """Collects delivered frames with timestamps."""

    def __init__(self, sim):
        self.sim = sim
        self.frames = []

    def receive_frame(self, frame, port):
        self.frames.append((self.sim.now, frame))


def make_frame(src_index, dst_index, payload_size=100):
    packet = Ipv4Packet(
        src=Ipv4Address("10.0.0.1"),
        dst=Ipv4Address("10.0.0.2"),
        payload=UdpDatagram(src_port=1, dst_port=2, payload_size=payload_size),
    )
    return EthernetFrame(
        src_mac=MacAddress.from_index(src_index),
        dst_mac=MacAddress.from_index(dst_index),
        payload=packet,
    )


def attach_stations(topology, count, sim):
    """Attach ``count`` sink stations; returns (sinks, ports)."""
    sinks, ports = [], []
    for index in range(count):
        sink = Sink(sim)
        port = topology.add_station(f"h{index}")
        port.attach(sink)
        sinks.append(sink)
        ports.append(port)
    return sinks, ports


class TestValidation:
    def test_degenerate_fabric_needs_one_spine(self):
        sim = Simulator()
        with pytest.raises(ValueError, match="exactly one spine"):
            FabricTopology(sim, leaf_count=0, spine_count=2)

    def test_counts_must_be_sane(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            FabricTopology(sim, spine_count=0)
        with pytest.raises(ValueError):
            FabricTopology(sim, leaf_count=-1)

    def test_shape_and_trunk_defaults(self):
        sim = Simulator()
        fabric = FabricTopology(sim, leaf_count=4, spine_count=2, queue_capacity=64)
        assert len(fabric.spines) == 2 and len(fabric.leaves) == 4
        # 1 spine-chain trunk + 4 leaf uplinks.
        assert len(fabric.trunks) == 5
        for trunk in fabric.trunks:
            assert trunk.bandwidth_bps == DEFAULT_TRUNK_BPS
            assert trunk.port_a.queue_capacity == 4 * 64
            assert trunk.port_b.queue_capacity == 4 * 64


class TestDegenerateStarEquivalence:
    def test_four_host_fabric_matches_star_event_for_event(self):
        """leaf_count=0 must reproduce StarTopology timing exactly."""

        def run(topology_factory):
            sim = Simulator()
            topology = topology_factory(sim)
            sinks, ports = attach_stations(topology, 4, sim)
            # h0 -> h2 unknown unicast (floods), then the learned reply.
            ports[0].send(make_frame(0, 2))
            sim.run(until=0.01)
            ports[2].send(make_frame(2, 0))
            sim.run(until=0.02)
            return [
                [(when, int(frame.src_mac), int(frame.dst_mac)) for when, frame in sink.frames]
                for sink in sinks
            ], sim.events_executed

        star_frames, star_events = run(lambda sim: StarTopology(sim))
        fabric_frames, fabric_events = run(
            lambda sim: FabricTopology(sim, leaf_count=0, spine_count=1)
        )
        assert fabric_frames == star_frames
        assert fabric_events == star_events


class TestMultiSwitchForwarding:
    def test_unknown_unicast_floods_across_switches(self):
        sim = Simulator()
        fabric = FabricTopology(sim, leaf_count=2, spine_count=1)
        sinks, ports = attach_stations(fabric, 4, sim)
        ports[0].send(make_frame(0, 3))
        sim.run(until=0.01)
        # Every other station sees the flooded frame; the sender does not.
        assert not sinks[0].frames
        for sink in sinks[1:]:
            assert len(sink.frames) == 1

    def test_learned_unicast_crosses_the_fabric_without_flooding(self):
        sim = Simulator()
        fabric = FabricTopology(sim, leaf_count=4, spine_count=2)
        sinks, ports = attach_stations(fabric, 8, sim)
        fabric.prime_mac_tables(
            {f"h{index}": MacAddress.from_index(index) for index in range(8)}
        )
        ports[0].send(make_frame(0, 7))
        sim.run(until=0.01)
        assert len(sinks[7].frames) == 1
        for index in range(1, 7):
            assert not sinks[index].frames
        assert all(switch.flooded_frames == 0 for switch in fabric.switches)

    def test_prime_installs_station_macs_on_every_switch(self):
        sim = Simulator()
        fabric = FabricTopology(sim, leaf_count=4, spine_count=2)
        attach_stations(fabric, 8, sim)
        macs = {f"h{index}": MacAddress.from_index(index) for index in range(8)}
        fabric.prime_mac_tables(macs)
        for switch in fabric.switches:
            assert set(switch.mac_table()) == set(macs.values())

    def test_stations_round_robin_across_leaves(self):
        sim = Simulator()
        fabric = FabricTopology(sim, leaf_count=2, spine_count=1)
        attach_stations(fabric, 4, sim)
        assert fabric.leaf_of("h0") is fabric.leaves[0]
        assert fabric.leaf_of("h1") is fabric.leaves[1]
        assert fabric.leaf_of("h2") is fabric.leaves[0]
        assert fabric.leaf_of("h3") is fabric.leaves[1]
        assert fabric.station_names() == ["h0", "h1", "h2", "h3"]

    def test_explicit_leaf_pins_the_station(self):
        sim = Simulator()
        fabric = FabricTopology(sim, leaf_count=3, spine_count=1)
        fabric.add_station("pinned", leaf=2)
        assert fabric.leaf_of("pinned") is fabric.leaves[2]

    def test_broadcast_reaches_every_station_once(self):
        sim = Simulator()
        fabric = FabricTopology(sim, leaf_count=4, spine_count=2)
        sinks, ports = attach_stations(fabric, 8, sim)
        broadcast = EthernetFrame(
            src_mac=MacAddress.from_index(0),
            dst_mac=MacAddress("ff:ff:ff:ff:ff:ff"),
            payload=Ipv4Packet(
                src=Ipv4Address("10.0.0.1"),
                dst=Ipv4Address("10.0.0.255"),
                payload=UdpDatagram(src_port=1, dst_port=2, payload_size=50),
            ),
        )
        ports[0].send(broadcast)
        sim.run(until=0.01)
        assert not sinks[0].frames
        for sink in sinks[1:]:
            assert len(sink.frames) == 1  # tree topology: no duplicates
