"""Tests for the unified RunConfig run API and its legacy-kwargs shim."""

import warnings

import pytest

from repro.core.methodology import MeasurementSettings
from repro.core.parallel import ON_FAILURE_RAISE, ON_FAILURE_RECORD
from repro.experiments import FULL, QUICK, Preset, RunConfig
from repro.experiments import fig2_bandwidth
from repro.experiments.results import to_json

TINY = Preset(
    name="tiny",
    settings=MeasurementSettings(duration=0.3),
    depths=(1, 16),
    vpg_counts=(1,),
)


class TestCoerce:
    def test_no_arguments_yields_the_default_config(self):
        config = RunConfig.coerce(None, {})
        assert config == RunConfig()
        assert config.preset is None and config.retries == 0

    def test_config_passes_through_unchanged(self):
        config = RunConfig(preset="quick", jobs=2)
        assert RunConfig.coerce(config, {}) is config

    def test_legacy_kwargs_build_an_equal_config(self):
        progress = lambda line: None  # noqa: E731
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            coerced = RunConfig.coerce(None, {"preset": TINY, "jobs": 3, "progress": progress})
        assert coerced == RunConfig(preset=TINY, jobs=3, progress=progress)

    def test_legacy_kwargs_warn_by_default(self):
        with pytest.warns(DeprecationWarning, match="RunConfig"):
            RunConfig.coerce(None, {"jobs": 2})

    def test_warn_false_is_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            RunConfig.coerce(None, {"jobs": 2}, warn=False)

    def test_config_and_kwargs_together_rejected(self):
        with pytest.raises(TypeError, match="not both"):
            RunConfig.coerce(RunConfig(), {"jobs": 2})

    def test_unknown_keyword_rejected(self):
        with pytest.raises(TypeError, match="unknown run"):
            RunConfig.coerce(None, {"job": 2})

    def test_non_config_positional_rejected(self):
        with pytest.raises(TypeError, match="RunConfig"):
            RunConfig.coerce("quick", {})

    def test_config_is_frozen(self):
        with pytest.raises(Exception):
            RunConfig().jobs = 4


class TestResolution:
    def test_none_preset_resolves_to_full(self):
        assert RunConfig().resolved_preset("fig2") is FULL

    def test_name_resolves_per_experiment(self):
        assert RunConfig(preset="quick").resolved_preset("fig3a") is QUICK["fig3a"]

    def test_preset_instance_passes_through(self):
        assert RunConfig(preset=TINY).resolved_preset("fig2") is TINY

    def test_executor_carries_the_fault_tolerance_fields(self):
        executor = RunConfig(
            jobs=1, retries=3, point_timeout=5.0, on_failure="record"
        ).executor()
        assert executor.retries == 3
        assert executor.point_timeout == 5.0
        assert executor.on_failure == ON_FAILURE_RECORD
        assert RunConfig(jobs=1).executor().on_failure == ON_FAILURE_RAISE


class TestLegacyEquivalence:
    def test_legacy_and_config_runs_serialize_to_identical_bytes(self):
        """The deprecation shim must not change results in any way."""
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = fig2_bandwidth.run(preset=TINY, jobs=1)
        config = fig2_bandwidth.run(RunConfig(preset=TINY, jobs=1))
        assert to_json(legacy) == to_json(config)
