"""Tests for rule-set builders and anomaly analysis."""

import pytest

from repro.firewall.anomalies import AnomalyKind, analyze, shadowed_rules
from repro.firewall.builders import (
    allow_all,
    deny_all,
    oracle_ruleset,
    padded_ruleset,
    padding_rule,
    service_rule,
    vpg_ruleset,
)
from repro.firewall.rules import (
    Action,
    AddressPattern,
    Direction,
    PortRange,
    Rule,
    VpgRule,
)
from repro.firewall.ruleset import RuleSet
from repro.net.addresses import Ipv4Address
from repro.net.packet import IpProtocol, Ipv4Packet, TcpSegment

TARGET = Ipv4Address("10.0.0.3")


def tcp_packet(dport=5001):
    return Ipv4Packet(
        src=Ipv4Address("10.0.0.2"),
        dst=TARGET,
        payload=TcpSegment(src_port=40000, dst_port=dport),
    )


class TestBuilders:
    def test_allow_all_matches_at_depth_one(self):
        result = allow_all().evaluate(tcp_packet(), Direction.INBOUND)
        assert result.allowed and result.rules_traversed == 1

    def test_deny_all_denies(self):
        result = deny_all().evaluate(tcp_packet(), Direction.INBOUND)
        assert not result.allowed

    def test_padded_ruleset_places_action_at_exact_depth(self):
        action = service_rule(Action.ALLOW, IpProtocol.TCP, 5001)
        for depth in (1, 8, 16, 32, 64):
            ruleset = padded_ruleset(depth, action_rule=action)
            result = ruleset.evaluate(tcp_packet(), Direction.INBOUND)
            assert result.allowed
            assert result.rules_traversed == depth
            assert ruleset.table_size == depth

    def test_padding_rules_never_match_testbed_traffic(self):
        for index in range(64):
            rule = padding_rule(index)
            assert not rule.matches(tcp_packet(), Direction.INBOUND)
            assert not rule.matches(tcp_packet(), Direction.OUTBOUND)

    def test_padding_never_shadows_action_rule(self):
        ruleset = padded_ruleset(64, action_rule=service_rule(Action.ALLOW, IpProtocol.TCP, 5001))
        shadowed = shadowed_rules(ruleset)
        assert ruleset.rules[-1] not in shadowed

    def test_padded_depth_must_fit_action_rule(self):
        vpg = VpgRule(action=Action.ALLOW, vpg_id=1)
        with pytest.raises(ValueError):
            padded_ruleset(1, action_rule=vpg)  # pair needs depth >= 2
        with pytest.raises(ValueError):
            padded_ruleset(0)

    def test_vpg_ruleset_only_last_vpg_matches(self):
        matching = VpgRule(
            action=Action.ALLOW,
            protocol=IpProtocol.TCP,
            dst_ports=PortRange.single(5001),
            vpg_id=500,
        )
        ruleset = vpg_ruleset(4, matching)
        assert ruleset.table_size == 8  # 4 pairs
        result = ruleset.evaluate_encrypted(500)
        assert result.allowed
        assert result.rules_traversed == 8
        # The padding VPGs carry distinct ids that never match.
        for rule in ruleset.rules[:-1]:
            assert not rule.matches_encrypted(500)

    def test_vpg_ruleset_requires_at_least_one(self):
        with pytest.raises(ValueError):
            vpg_ruleset(0, VpgRule(action=Action.ALLOW, vpg_id=1))

    def test_oracle_ruleset_needs_at_least_31_rules(self):
        ruleset = oracle_ruleset(TARGET)
        assert ruleset.table_size >= 31

    def test_oracle_ruleset_allows_tns_listener(self):
        ruleset = oracle_ruleset(TARGET)
        result = ruleset.evaluate(tcp_packet(dport=1521), Direction.INBOUND)
        assert result.allowed

    def test_oracle_ruleset_denies_random_port(self):
        ruleset = oracle_ruleset(TARGET)
        result = ruleset.evaluate(tcp_packet(dport=2222), Direction.INBOUND)
        assert not result.allowed


class TestAnomalies:
    def test_shadowing_detected(self):
        wide_deny = Rule(action=Action.DENY, protocol=IpProtocol.TCP)
        narrow_allow = Rule(
            action=Action.ALLOW, protocol=IpProtocol.TCP, dst_ports=PortRange.single(80)
        )
        findings = analyze(RuleSet([wide_deny, narrow_allow]))
        kinds = {finding.kind for finding in findings}
        assert AnomalyKind.SHADOWED in kinds
        assert shadowed_rules(RuleSet([wide_deny, narrow_allow])) == [narrow_allow]

    def test_redundancy_detected(self):
        wide_allow = Rule(action=Action.ALLOW, protocol=IpProtocol.TCP)
        narrow_allow = Rule(
            action=Action.ALLOW, protocol=IpProtocol.TCP, dst_ports=PortRange.single(80)
        )
        findings = analyze(RuleSet([wide_allow, narrow_allow]))
        assert any(finding.kind == AnomalyKind.REDUNDANT for finding in findings)

    def test_correlation_detected(self):
        allow_from_net = Rule(
            action=Action.ALLOW,
            src=AddressPattern(Ipv4Address("10.0.0.0"), 8),
            dst_ports=PortRange(0, 100),
        )
        deny_to_port = Rule(action=Action.DENY, dst_ports=PortRange(80, 200))
        findings = analyze(RuleSet([allow_from_net, deny_to_port]))
        assert any(finding.kind == AnomalyKind.CORRELATED for finding in findings)

    def test_disjoint_rules_report_nothing(self):
        rule_a = Rule(action=Action.ALLOW, protocol=IpProtocol.TCP, dst_ports=PortRange.single(80))
        rule_b = Rule(action=Action.DENY, protocol=IpProtocol.TCP, dst_ports=PortRange.single(443))
        assert analyze(RuleSet([rule_a, rule_b])) == []

    def test_direction_separated_rules_do_not_conflict(self):
        inbound = Rule(action=Action.DENY, direction=Direction.INBOUND)
        outbound = Rule(action=Action.ALLOW, direction=Direction.OUTBOUND)
        findings = analyze(RuleSet([inbound, outbound]))
        assert all(finding.kind != AnomalyKind.SHADOWED for finding in findings)

    def test_describe_mentions_rule_positions(self):
        wide = Rule(action=Action.DENY)
        narrow = Rule(action=Action.ALLOW, protocol=IpProtocol.TCP)
        findings = analyze(RuleSet([wide, narrow]))
        assert findings
        assert "rule 2" in findings[0].describe()
