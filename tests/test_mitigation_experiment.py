"""Acceptance tests for the mitigation experiment (repro.experiments.mitigation)."""

import pytest

from repro.core.methodology import MeasurementSettings
from repro.core.testbed import DeviceKind
from repro.experiments import RunConfig, mitigation
from repro.experiments.presets import Preset
from repro.experiments.results import deserialize, serialize

#: Short windows keep the three-window timeline affordable in CI.
SETTINGS = MeasurementSettings(duration=0.25)


def tiny_preset(**overrides) -> Preset:
    defaults = dict(
        name="tiny",
        settings=SETTINGS,
        defense_modes=("off", "quarantine"),
        fleet_defense_modes=(),
        fleet_sizes=(),
    )
    defaults.update(overrides)
    return Preset(**defaults)


@pytest.fixture(scope="module")
def tiny_result():
    return mitigation.run(RunConfig(preset=tiny_preset()))


class TestRecoveryPhysics:
    def point(self, result, device, mode):
        return next(
            p for p in result.points if p.device == device and p.mode == mode
        )

    def test_undefended_efw_collapses(self, tiny_result):
        # The paper's §4.3 outcome: deny flood, no defense, goodput ~0.
        point = self.point(tiny_result, "efw", "off")
        assert point.baseline_mbps > 5.0
        assert point.recovery_fraction < 0.2
        assert point.wedged_at_end

    def test_quarantine_restores_goodput(self, tiny_result):
        point = self.point(tiny_result, "efw", "quarantine")
        assert point.quarantined
        assert point.recovery_fraction >= 0.8
        assert not point.wedged_at_end
        assert point.time_to_detect is not None
        assert point.time_to_mitigate is not None
        assert point.time_to_mitigate >= point.time_to_detect
        assert point.time_to_mitigate < 0.2

    def test_rate_limit_restores_goodput(self):
        point = mitigation._mitigation_point(DeviceKind.EFW, "rate-limit", SETTINGS)
        assert point.recovery_fraction >= 0.8
        assert point.limiter_dropped > 1_000
        assert not point.wedged_at_end

    def test_deny_rule_is_futile_on_the_efw(self):
        # Denying the flood still feeds the deny-rate lockup: the card
        # re-wedges as fast as the restart sweep revives it (the paper's
        # "no solution was found", §4.3).
        point = mitigation._mitigation_point(DeviceKind.EFW, "deny-rule", SETTINGS)
        assert point.agent_restarts >= 3
        assert point.pushes_acked > point.agent_restarts  # every restart re-pushed

    def test_deny_rule_is_decisive_on_the_adf(self):
        point = mitigation._mitigation_point(DeviceKind.ADF, "deny-rule", SETTINGS)
        assert point.recovery_fraction >= 0.8
        assert point.agent_restarts == 0

    def test_unknown_mode_rejected(self):
        with pytest.raises(KeyError):
            mitigation.actions_for_mode("nope")


class TestFleetLeg:
    def test_fleet_quarantine_recovers_the_aggregate(self):
        preset = tiny_preset(
            defense_modes=(),
            fleet_defense_modes=("off", "quarantine"),
            fleet_sizes=(2,),
        )
        result = mitigation.run(RunConfig(preset=preset))
        assert result.points == []
        off, quarantine = result.fleet_points
        assert off.mode == "off" and quarantine.mode == "quarantine"
        assert off.recovery_fraction < quarantine.recovery_fraction
        assert quarantine.recovery_fraction >= 0.8
        assert quarantine.dos_fraction_recovery == 0.0
        assert quarantine.pushes_acked == 2


class TestRunContract:
    def test_results_identical_for_any_jobs_value(self, tiny_result):
        parallel = mitigation.run(RunConfig(preset=tiny_preset(), jobs=2))
        assert parallel.points == tiny_result.points
        assert parallel.fleet_points == tiny_result.fleet_points

    def test_legacy_keywords_warn_but_work(self):
        preset = tiny_preset(defense_modes=("off",))
        with pytest.warns(DeprecationWarning, match="RunConfig"):
            result = mitigation.run(preset=preset)
        assert [p.mode for p in result.points] == ["off", "off"]

    def test_registered_with_the_runner(self):
        from repro.experiments import runner

        assert "mitigation" in runner.experiment_ids()
        assert runner.REGISTRY["mitigation"].entry is mitigation.run

    def test_table_renders_both_legs(self, tiny_result):
        text = tiny_result.table()
        assert "recovery" in text
        assert "efw" in text and "adf" in text

    def test_envelope_roundtrip(self, tiny_result):
        rebuilt = deserialize(serialize(tiny_result))
        assert isinstance(rebuilt, mitigation.MitigationResult)
        assert rebuilt.points == tiny_result.points
        assert rebuilt.fleet_points == tiny_result.fleet_points
