"""Tests for the ASCII figure renderings."""

from repro.core.methodology import MinimumFloodResult
from repro.core.reports import ascii_plot
from repro.experiments.figures import PLOTTERS, plot_result
from repro.experiments.fig2_bandwidth import Fig2Result
from repro.experiments.fig3a_flood import Fig3aResult
from repro.experiments.fig3b_minflood import Fig3bResult


class TestAsciiMarks:
    def test_series_sharing_initial_get_distinct_marks(self):
        plot = ascii_plot(
            [
                ("ADF", [(0, 1), (10, 2)]),
                ("ADF (VPG)", [(0, 3), (10, 4)]),
            ],
            width=20,
            height=5,
        )
        legend_line = [line for line in plot.splitlines() if "legend" in line][0]
        assert "A=ADF" in legend_line
        # The second series must NOT reuse 'A'.
        assert legend_line.count("A=") == 1


class TestFigurePlotters:
    def test_fig2_plot_contains_axes_and_legend(self):
        result = Fig2Result(series={"EFW": [(1, 94.8), (64, 47.8)], "ADF": [(1, 94.8), (64, 31.6)]})
        plot = plot_result("fig2", result)
        assert "bandwidth (Mbps)" in plot
        assert "rules traversed" in plot
        assert "E=EFW" in plot

    def test_fig3a_plot(self):
        result = Fig3aResult(series={"EFW": [(0, 94.8), (50000, 0.0)]})
        plot = plot_result("fig3a", result)
        assert "flood (pps)" in plot

    def test_fig3b_plot_skips_lockup_series(self):
        result = Fig3bResult(
            series={
                "EFW (Allow)": [
                    (1, MinimumFloodResult(1, True, rate_pps=46000.0)),
                    (64, MinimumFloodResult(64, True, rate_pps=5250.0)),
                ],
                "EFW (Deny)": [
                    (1, MinimumFloodResult(1, False, lockup=True, lockup_rate_pps=1000.0)),
                ],
            }
        )
        plot = plot_result("fig3b", result)
        assert "EFW (Allow)" in plot
        assert "EFW (Deny)" not in plot  # unmeasurable: nothing to plot

    def test_fig3b_plot_with_no_measurable_series(self):
        result = Fig3bResult(
            series={
                "EFW (Deny)": [
                    (1, MinimumFloodResult(1, False, lockup=True, lockup_rate_pps=1000.0)),
                ]
            }
        )
        assert plot_result("fig3b", result) == "(no measurable series)"

    def test_non_figure_experiments_not_plottable(self):
        assert plot_result("table1", object()) is None
        assert set(PLOTTERS) == {"fig2", "fig3a", "fig3b", "chaos"}
