"""Edge-case tests for the ingress token bucket (repro.nic.ratelimit)."""

import pytest

from repro.net.addresses import Ipv4Address
from repro.net.packet import Ipv4Packet, UdpDatagram
from repro.nic.ratelimit import IngressRateLimiter, TokenBucket
from repro.policy_ports import AGENT_PORT, HEARTBEAT_PORT
from repro.sim.engine import Simulator


def _udp(src: str, dst: str, dst_port: int) -> Ipv4Packet:
    return Ipv4Packet(
        src=Ipv4Address(src),
        dst=Ipv4Address(dst),
        payload=UdpDatagram(src_port=40000, dst_port=dst_port),
    )


class TestZeroCapacity:
    def test_zero_burst_is_rejected_not_silently_wedged(self):
        # A zero-capacity bucket would deny everything forever — the
        # constructor refuses it instead of shipping a black hole.
        with pytest.raises(ValueError):
            TokenBucket(rate_per_s=100.0, burst=0.0)

    def test_fractional_burst_below_one_token_is_rejected(self):
        with pytest.raises(ValueError):
            TokenBucket(rate_per_s=100.0, burst=0.999)

    def test_zero_rate_is_rejected(self):
        with pytest.raises(ValueError):
            TokenBucket(rate_per_s=0.0, burst=4.0)
        with pytest.raises(ValueError):
            TokenBucket(rate_per_s=-5.0, burst=4.0)

    def test_limiter_propagates_bucket_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            IngressRateLimiter(sim, "t.efw", rate_pps=100.0, burst=0.0)
        with pytest.raises(ValueError):
            IngressRateLimiter(sim, "t.efw", rate_pps=0.0)


class TestBurstExactlyAtCapacity:
    def test_burst_of_n_admits_exactly_n_at_one_instant(self):
        bucket = TokenBucket(rate_per_s=10.0, burst=7.0)
        admitted = [bucket.admit(0.0) for _ in range(9)]
        assert admitted == [True] * 7 + [False] * 2

    def test_minimum_burst_of_one_admits_exactly_one(self):
        bucket = TokenBucket(rate_per_s=10.0, burst=1.0)
        assert bucket.admit(0.0)
        assert not bucket.admit(0.0)
        # Exactly one token period later the next packet fits again.
        assert bucket.admit(0.1)
        assert not bucket.admit(0.1)

    def test_one_more_token_exactly_one_period_after_drain(self):
        bucket = TokenBucket(rate_per_s=50.0, burst=4.0)
        for _ in range(4):
            assert bucket.admit(1.0)
        assert not bucket.admit(1.0)
        # 1/rate seconds refills exactly one token — not two, not zero.
        assert bucket.admit(1.0 + 1.0 / 50.0)
        assert not bucket.admit(1.0 + 1.0 / 50.0)


class TestRefillAcrossPausedWindows:
    """A paused processor means *no admit calls* for the whole window.

    The bucket must refill purely from elapsed virtual time when the
    next packet finally arrives — crediting min(burst, gap * rate), not
    zero (time-loss) and not more (burst overflow).
    """

    def test_gap_refills_exactly_elapsed_times_rate(self):
        bucket = TokenBucket(rate_per_s=100.0, burst=50.0)
        drained = sum(1 for _ in range(60) if bucket.admit(2.0))
        assert drained == 50
        # Processor paused for 0.12 s: nothing calls admit.  On resume
        # the gap is worth exactly 12 tokens.
        resumed = 2.0 + 0.12
        admitted = sum(1 for _ in range(20) if bucket.admit(resumed))
        assert admitted == 12

    def test_long_pause_caps_at_burst_capacity(self):
        bucket = TokenBucket(rate_per_s=1000.0, burst=8.0)
        for _ in range(8):
            bucket.admit(0.0)
        # An hour-long wedge refills 3.6M tokens' worth of time but the
        # bucket still holds only its burst capacity.
        admitted = sum(1 for _ in range(20) if bucket.admit(3600.0))
        assert admitted == 8

    def test_two_pauses_accumulate_independently(self):
        bucket = TokenBucket(rate_per_s=10.0, burst=5.0)
        for _ in range(5):
            bucket.admit(0.0)
        assert not bucket.admit(0.0)
        # First window: 0.3 s -> 3 tokens.
        assert sum(1 for _ in range(5) if bucket.admit(0.3)) == 3
        # Second window: another 0.2 s -> 2 more.
        assert sum(1 for _ in range(5) if bucket.admit(0.5)) == 2

    def test_time_never_flows_backwards(self):
        # A stale timestamp (out-of-order delivery) must not refill.
        bucket = TokenBucket(rate_per_s=1000.0, burst=2.0)
        bucket.admit(1.0)
        bucket.admit(1.0)
        assert not bucket.admit(0.5)


class TestControlPlaneExemptionUnderSaturation:
    def _saturated_limiter(self):
        sim = Simulator()
        # Unscoped limiter (spoofed flood fallback), tiny budget.
        limiter = IngressRateLimiter(sim, "t.efw", rate_pps=10.0, burst=2.0)
        t = 0.0
        while limiter.dropped == 0:
            limiter.admit(_udp("10.0.0.9", "10.0.0.3", 7777), t)
            t += 0.001
        return limiter, t

    def test_policy_pushes_pass_a_saturated_limiter(self):
        limiter, t = self._saturated_limiter()
        for i in range(50):
            now = t + i * 0.001
            # Keep the bucket pinned empty with flood traffic...
            limiter.admit(_udp("10.0.0.9", "10.0.0.3", 7777), now)
            # ...while interleaved control-plane datagrams always pass.
            push = _udp("10.0.0.1", "10.0.0.3", AGENT_PORT)
            beat = _udp("10.0.0.3", "10.0.0.1", HEARTBEAT_PORT)
            assert limiter.admit(push, now)
            assert limiter.admit(beat, now)

    def test_control_traffic_never_spends_tokens(self):
        limiter, t = self._saturated_limiter()
        admitted_before = limiter.admitted
        dropped_before = limiter.dropped
        for i in range(100):
            assert limiter.admit(_udp("10.0.0.1", "10.0.0.3", AGENT_PORT), t)
        # Out-of-scope packets bypass the bucket entirely: neither
        # counter moves, and the data-plane budget is unchanged.
        assert limiter.admitted == admitted_before
        assert limiter.dropped == dropped_before
        assert limiter.bucket.tokens < 1.0

    def test_heartbeat_source_port_is_also_exempt(self):
        limiter, t = self._saturated_limiter()
        reply = Ipv4Packet(
            src=Ipv4Address("10.0.0.3"),
            dst=Ipv4Address("10.0.0.1"),
            payload=UdpDatagram(src_port=AGENT_PORT, dst_port=52000),
        )
        assert not limiter.matches(reply)
        assert limiter.admit(reply, t)
