"""Chrome trace-event export round-trips and flight-recorder semantics.

One EFW deny-flood lockup scenario runs with tracing and the flight
recorder armed; its trace must export to valid Chrome trace-event JSON
(Perfetto-loadable: consistent ts/dur, one track per component, named
threads) and to JSONL, and the flight recorder must dump exactly once
per incident — each lockup gets its own bounded dump ending at its own
onset.
"""

import json

import pytest

from repro.apps.flood import FloodGenerator, FloodKind, FloodSpec
from repro.apps.iperf import IperfServer
from repro.core.testbed import DeviceKind, Testbed
from repro.firewall import Action, PortRange, Rule, padded_ruleset
from repro.net.packet import IpProtocol
from repro.obs.tracing import (
    SpanRecord,
    arm_tracing,
    chrome_trace,
    write_chrome_trace,
    write_trace_jsonl,
)
from repro.obs.tracing.collect import ExperimentTrace, PointTrace, snapshot_tracer
from repro.obs.tracing.export import trace_jsonl_lines


def _deny_policy():
    ruleset = padded_ruleset(
        8,
        action_rule=Rule(
            action=Action.DENY,
            protocol=IpProtocol.TCP,
            dst_ports=PortRange.single(7777),
            symmetric=True,
            name="deny-flood",
        ),
    )
    with ruleset.mutate() as edit:
        edit.append(
            Rule(
                action=Action.ALLOW,
                protocol=IpProtocol.TCP,
                dst_ports=PortRange.single(5001),
                symmetric=True,
                name="allow-iperf",
            )
        )
    return ruleset


@pytest.fixture(scope="module")
def lockup_run():
    """Flood a deny-all EFW into lockup twice; return (tracer, trace)."""
    bed = Testbed(device=DeviceKind.EFW)
    tracer = arm_tracing(bed.sim, sample_every=4, flight=True)
    bed.install_target_policy(_deny_policy())
    IperfServer(bed.target)
    flood = FloodGenerator(
        bed.attacker, FloodSpec(kind=FloodKind.TCP_ACK, dst_port=7777)
    )
    flood.start(bed.target.ip, rate_pps=2000)
    bed.run(0.3)
    flood.stop()
    bed.restart_target_agent()
    bed.run(0.05)
    flood.start(bed.target.ip, rate_pps=2000)
    bed.run(0.3)
    flood.stop()
    snapshot = snapshot_tracer(tracer, now=bed.sim.now)
    trace = ExperimentTrace(
        experiment_id="lockup-test",
        points=[PointTrace(label="efw deny-all", snapshots=[snapshot])],
    )
    return tracer, trace


class TestChromeExport:
    def test_round_trips_as_valid_json(self, lockup_run):
        _, trace = lockup_run
        payload = chrome_trace(trace)
        reparsed = json.loads(json.dumps(payload))
        assert reparsed["displayTimeUnit"] == "ms"
        assert reparsed["otherData"]["experiment"] == "lockup-test"
        assert len(reparsed["traceEvents"]) > 0

    def test_ts_and_dur_are_consistent(self, lockup_run):
        _, trace = lockup_run
        events = chrome_trace(trace)["traceEvents"]
        completes = [e for e in events if e["ph"] == "X"]
        assert completes
        for event in completes:
            assert event["ts"] >= 0
            assert event["dur"] >= 0
        # Within each track, complete events are laid out in
        # monotonically non-decreasing timestamp order.
        last_ts = {}
        for event in completes:
            key = (event["pid"], event["tid"])
            assert event["ts"] >= last_ts.get(key, 0)
            last_ts[key] = event["ts"]

    def test_one_named_track_per_component(self, lockup_run):
        _, trace = lockup_run
        events = chrome_trace(trace)["traceEvents"]
        thread_names = {
            (e["pid"], e["tid"]): e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        used = {
            (e["pid"], e["tid"]) for e in events if e["ph"] in ("X", "i")
        }
        # Every track that carries data is named, exactly once.
        assert used <= set(thread_names)
        names = set(thread_names.values())
        assert "target.efw" in names  # the NIC has its own track
        assert len(names) == len(thread_names)  # no two tids share a name

    def test_instant_events_carry_thread_scope(self, lockup_run):
        _, trace = lockup_run
        events = chrome_trace(trace)["traceEvents"]
        instants = [e for e in events if e["ph"] == "i"]
        assert instants
        assert all(e["s"] == "t" for e in instants)
        assert any(e["name"] == "lockup" for e in instants)

    def test_writers_produce_loadable_files(self, lockup_run, tmp_path):
        _, trace = lockup_run
        chrome_path = tmp_path / "trace.json"
        jsonl_path = tmp_path / "trace.jsonl"
        write_chrome_trace(trace, str(chrome_path))
        write_trace_jsonl(trace, str(jsonl_path))
        assert json.loads(chrome_path.read_text())["traceEvents"]
        lines = jsonl_path.read_text().splitlines()
        assert lines
        kinds = {json.loads(line)["type"] for line in lines}
        assert kinds >= {"span", "event", "incident"}


class TestJsonlExport:
    def test_every_line_is_self_describing(self, lockup_run):
        _, trace = lockup_run
        for line in trace_jsonl_lines(trace):
            parsed = json.loads(line)
            assert parsed["type"] in ("span", "event", "incident")
            assert parsed["point"] == "efw deny-all"


class TestFlightRecorder:
    def test_dumps_exactly_once_per_incident(self, lockup_run):
        tracer, _ = lockup_run
        lockups = [i for i in tracer.incidents if i.kind == "lockup"]
        assert len(lockups) == 2
        first, second = lockups
        assert first.dump is not None and second.dump is not None
        # Each dump is a distinct snapshot frozen at that incident's
        # onset: the final entry is that lockup's own event.
        assert first.dump is not second.dump
        assert first.dump[-1].event == "lockup"
        assert second.dump[-1].event == "lockup"
        assert first.dump[-1].time < second.dump[-1].time

    def test_restart_stamps_recovery_on_first_lockup_only(self, lockup_run):
        tracer, _ = lockup_run
        first, second = [i for i in tracer.incidents if i.kind == "lockup"]
        assert first.recovered_at is not None
        assert second.recovered_at is None

    def test_last_stage_attribution(self, lockup_run):
        tracer, _ = lockup_run
        first = [i for i in tracer.incidents if i.kind == "lockup"][0]
        last_stage = first.detail.get("last_stage")
        assert last_stage, "incident should attribute the last span before silence"
        stage = last_stage.split("@")[0]
        assert stage in (
            "app.send", "nic.tx", "link.tx", "switch.forward", "nic.rx",
            "app.deliver",
        )
        # The dump really does contain a span with that stage name.
        assert any(
            isinstance(r, SpanRecord) and r.name == stage for r in first.dump
        )
