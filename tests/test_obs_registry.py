"""Tests for the metrics registry (counters, gauges, histograms)."""

import math

import pytest

from repro.obs.registry import (
    DEFAULT_BUCKETS,
    NULL_REGISTRY,
    MetricsRegistry,
    NullRegistry,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("packets", nic="efw")
        assert counter.read() == 0.0
        counter.inc()
        counter.inc(2.5)
        assert counter.read() == 3.5

    def test_negative_increment_rejected(self):
        counter = MetricsRegistry().counter("packets")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("")


class TestGauge:
    def test_set_and_add_both_signs(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(10)
        gauge.add(-3)
        gauge.add(1.5)
        assert gauge.read() == 8.5


class TestHistogram:
    def test_bucket_bounds_are_inclusive_upper(self):
        histogram = MetricsRegistry().histogram("lat", buckets=(0.5, 1.0))
        histogram.observe(0.5)   # lands in the 0.5 bucket (inclusive bound)
        histogram.observe(0.6)   # lands in the 1.0 bucket
        histogram.observe(99.0)  # overflow
        snapshot = histogram.bucket_snapshot()
        assert snapshot == [(0.5, 1), (1.0, 1), (None, 1)]
        assert histogram.count == 3
        assert histogram.read() == 3.0

    def test_mean_tracks_observations_and_is_nan_when_empty(self):
        histogram = MetricsRegistry().histogram("lat")
        assert math.isnan(histogram.mean)
        histogram.observe(1.0)
        histogram.observe(3.0)
        assert histogram.mean == 2.0

    def test_invalid_buckets_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.histogram("a", buckets=())
        with pytest.raises(ValueError):
            registry.histogram("b", buckets=(1.0, 1.0))
        with pytest.raises(ValueError):
            registry.histogram("c", buckets=(2.0, 1.0))


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        first = registry.counter("packets", nic="efw")
        second = registry.counter("packets", nic="efw")
        assert first is second
        assert len(registry) == 1

    def test_labels_are_order_independent(self):
        registry = MetricsRegistry()
        first = registry.counter("packets", a="1", b="2")
        second = registry.counter("packets", b="2", a="1")
        assert first is second

    def test_different_labels_are_distinct_series(self):
        registry = MetricsRegistry()
        allowed = registry.counter("packets", verdict="allowed")
        denied = registry.counter("packets", verdict="denied")
        assert allowed is not denied
        assert len(registry) == 2

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("packets")
        with pytest.raises(ValueError):
            registry.gauge("packets")

    def test_callback_metrics_read_at_sample_time(self):
        registry = MetricsRegistry()
        state = {"dropped": 0}
        metric = registry.counter_fn("drops", lambda: state["dropped"])
        assert metric.read() == 0.0
        state["dropped"] = 7
        assert metric.read() == 7.0

    def test_read_all_renders_labels(self):
        registry = MetricsRegistry()
        registry.counter("plain").inc(2)
        registry.gauge("depth", queue="q").set(5)
        values = registry.read_all()
        assert values["plain"] == 2.0
        assert values["depth{queue=q}"] == 5.0

    def test_metrics_kept_in_registration_order(self):
        registry = MetricsRegistry()
        registry.counter("b")
        registry.counter("a")
        assert [metric.name for metric in registry.metrics()] == ["b", "a"]


class TestNullRegistry:
    def test_registrations_store_nothing(self):
        registry = NullRegistry()
        counter = registry.counter("packets", nic="efw")
        gauge = registry.gauge("depth")
        histogram = registry.histogram("lat")
        fn = registry.counter_fn("drops", lambda: 1.0)
        # Every registration returns the shared no-op instrument.
        assert counter is gauge is histogram is fn
        counter.inc()
        gauge.set(5)
        histogram.observe(1.0)
        assert counter.read() == 0.0
        assert len(registry) == 0
        assert registry.metrics() == []
        assert registry.read_all() == {}

    def test_enabled_flags(self):
        assert MetricsRegistry.enabled is True
        assert NULL_REGISTRY.enabled is False

    def test_simulator_defaults_to_null_registry(self):
        from repro.sim.engine import Simulator

        assert Simulator().metrics is NULL_REGISTRY

    def test_default_buckets_strictly_increasing(self):
        assert list(DEFAULT_BUCKETS) == sorted(set(DEFAULT_BUCKETS))
