"""Tests for MAC and IPv4 address value types."""

import pytest
from hypothesis import given, strategies as st

from repro.net.addresses import BROADCAST_MAC, Ipv4Address, MacAddress


class TestMacAddress:
    def test_parse_and_format_roundtrip(self):
        mac = MacAddress("02:00:00:00:00:2a")
        assert str(mac) == "02:00:00:00:00:2a"
        assert int(mac) == 0x02_00_00_00_00_2A

    def test_dash_separator_accepted(self):
        assert MacAddress("02-00-00-00-00-2a") == MacAddress("02:00:00:00:00:2a")

    def test_from_index_is_locally_administered(self):
        mac = MacAddress.from_index(5)
        first_octet = mac.to_bytes()[0]
        assert first_octet & 0x02  # locally administered bit
        assert not mac.is_multicast

    def test_broadcast_detection(self):
        assert BROADCAST_MAC.is_broadcast
        assert BROADCAST_MAC.is_multicast
        assert not MacAddress.from_index(1).is_broadcast

    def test_multicast_detection(self):
        assert MacAddress("01:00:5e:00:00:01").is_multicast

    def test_copy_constructor(self):
        original = MacAddress.from_index(9)
        assert MacAddress(original) == original

    def test_ordering_and_hashing(self):
        a, b = MacAddress(1), MacAddress(2)
        assert a < b
        assert len({a, b, MacAddress(1)}) == 2

    @pytest.mark.parametrize(
        "bad", ["", "02:00:00", "02:00:00:00:00:zz", "1:2:3:4:5:6:7"]
    )
    def test_malformed_strings_rejected(self, bad):
        with pytest.raises(ValueError):
            MacAddress(bad)

    @pytest.mark.parametrize("bad", [-1, 1 << 48])
    def test_out_of_range_integers_rejected(self, bad):
        with pytest.raises(ValueError):
            MacAddress(bad)

    def test_from_index_bounds(self):
        with pytest.raises(ValueError):
            MacAddress.from_index(-1)
        with pytest.raises(ValueError):
            MacAddress.from_index(1 << 24)

    @given(st.integers(min_value=0, max_value=(1 << 48) - 1))
    def test_string_roundtrip_property(self, value):
        mac = MacAddress(value)
        assert MacAddress(str(mac)) == mac

    @given(st.integers(min_value=0, max_value=(1 << 48) - 1))
    def test_bytes_roundtrip_property(self, value):
        mac = MacAddress(value)
        assert int.from_bytes(mac.to_bytes(), "big") == value


class TestIpv4Address:
    def test_parse_and_format_roundtrip(self):
        ip = Ipv4Address("10.0.0.42")
        assert str(ip) == "10.0.0.42"
        assert int(ip) == (10 << 24) + 42

    def test_copy_constructor(self):
        original = Ipv4Address("10.1.2.3")
        assert Ipv4Address(original) == original

    def test_addition(self):
        assert Ipv4Address("10.0.0.1") + 4 == Ipv4Address("10.0.0.5")

    def test_subnet_membership(self):
        net = Ipv4Address("192.168.1.0")
        assert Ipv4Address("192.168.1.77").in_subnet(net, 24)
        assert not Ipv4Address("192.168.2.77").in_subnet(net, 24)

    def test_prefix_zero_matches_everything(self):
        assert Ipv4Address("8.8.8.8").in_subnet(Ipv4Address(0), 0)

    def test_prefix_32_is_exact_match(self):
        host = Ipv4Address("10.0.0.7")
        assert host.in_subnet(host, 32)
        assert not (host + 1).in_subnet(host, 32)

    def test_bad_prefix_rejected(self):
        with pytest.raises(ValueError):
            Ipv4Address("1.2.3.4").in_subnet(Ipv4Address(0), 33)

    @pytest.mark.parametrize("bad", ["", "1.2.3", "1.2.3.256", "a.b.c.d", "1.2.3.4.5"])
    def test_malformed_strings_rejected(self, bad):
        with pytest.raises(ValueError):
            Ipv4Address(bad)

    @pytest.mark.parametrize("bad", [-1, 1 << 32])
    def test_out_of_range_integers_rejected(self, bad):
        with pytest.raises(ValueError):
            Ipv4Address(bad)

    def test_ordering_and_hashing(self):
        a, b = Ipv4Address("10.0.0.1"), Ipv4Address("10.0.0.2")
        assert a < b
        assert len({a, b, Ipv4Address("10.0.0.1")}) == 2

    @given(st.integers(min_value=0, max_value=(1 << 32) - 1))
    def test_string_roundtrip_property(self, value):
        ip = Ipv4Address(value)
        assert Ipv4Address(str(ip)) == ip

    @given(
        st.integers(min_value=0, max_value=(1 << 32) - 1),
        st.integers(min_value=0, max_value=32),
    )
    def test_address_always_in_its_own_subnet(self, value, prefix_len):
        ip = Ipv4Address(value)
        assert ip.in_subnet(ip, prefix_len)
