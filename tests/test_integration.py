"""End-to-end integration tests telling the paper's stories."""

import pytest

#: Full end-to-end regenerations; excluded from the default fast tier
#: (see [tool.pytest.ini_options] in pyproject.toml).
pytestmark = pytest.mark.slow

from repro.apps.flood import FloodGenerator, FloodKind, FloodSpec
from repro.apps.http_load import HttpLoadClient
from repro.apps.httpd import HttpServer
from repro.apps.iperf import IperfClient, IperfServer
from repro.core.methodology import FloodToleranceValidator, MeasurementSettings
from repro.core.testbed import DeviceKind, Testbed
from repro.firewall.builders import allow_all, oracle_ruleset, padded_ruleset
from repro.firewall.rules import Action, PortRange, Rule
from repro.net.packet import IpProtocol


class TestDosStory:
    """The paper's headline: flood the EFW, deny service, restart to recover."""

    def test_flood_denies_service_and_restart_recovers(self):
        bed = Testbed(device=DeviceKind.EFW)
        bed.install_target_policy(allow_all())
        IperfServer(bed.target)

        # Phase 1: clean measurement.
        session = IperfClient(bed.client).start_tcp(bed.target.ip, duration=0.4)
        bed.run(0.45)
        clean_mbps = session.result().mbps
        assert clean_mbps > 85

        # Phase 2: attacker floods; bandwidth collapses.
        flood = FloodGenerator(
            bed.attacker, FloodSpec(kind=FloodKind.TCP_ACK, dst_port=5001)
        )
        flood.start(bed.target.ip, rate_pps=50000)
        bed.run(0.2)
        session = IperfClient(bed.client).start_tcp(bed.target.ip, duration=0.4)
        bed.run(0.45)
        flooded_mbps = session.result().mbps
        assert flooded_mbps < clean_mbps * 0.1

        # Phase 3: flood stops; service returns without intervention
        # (the allow-all EFW does not wedge).
        flood.stop()
        bed.run(0.3)
        session = IperfClient(bed.client).start_tcp(bed.target.ip, duration=0.4)
        bed.run(0.45)
        recovered_mbps = session.result().mbps
        assert recovered_mbps > 85
        assert not bed.target.nic.wedged

    def test_deny_flood_wedges_efw_until_agent_restart(self):
        bed = Testbed(device=DeviceKind.EFW)
        ruleset = padded_ruleset(
            8,
            action_rule=Rule(
                action=Action.DENY,
                protocol=IpProtocol.TCP,
                dst_ports=PortRange.single(7777),
                symmetric=True,
            ),
        )
        with ruleset.mutate() as edit:
            edit.append(
                Rule(
                    action=Action.ALLOW,
                    protocol=IpProtocol.TCP,
                    dst_ports=PortRange.single(5001),
                    symmetric=True,
                )
            )
        bed.install_target_policy(ruleset)
        IperfServer(bed.target)

        flood = FloodGenerator(
            bed.attacker, FloodSpec(kind=FloodKind.TCP_ACK, dst_port=7777)
        )
        flood.start(bed.target.ip, rate_pps=2000)
        bed.run(1.0)
        flood.stop()
        assert bed.target.nic.wedged

        # Even legitimate traffic is dead while wedged.
        session = IperfClient(bed.client).start_tcp(bed.target.ip, duration=0.4)
        bed.run(0.5)
        assert session.result().mbps < 1.0

        # The documented recovery: restart the firewall agent.
        bed.restart_target_agent()
        session = IperfClient(bed.client).start_tcp(bed.target.ip, duration=0.4)
        bed.run(0.5)
        assert session.result().mbps > 50


class TestSpoofingStory:
    """§4.3: early deny is only partially effective because the attacker
    can spoof packets that traverse deeper into the rule-set."""

    def test_spoofed_flood_bypasses_early_deny(self):
        def min_flood_with_spec(spec):
            bed = Testbed(device=DeviceKind.ADF)
            # Deny the attacker's real address early; iperf allowed at 32.
            deny_attacker = Rule(
                action=Action.DENY,
                protocol=IpProtocol.TCP,
                name="deny-attacker-port",
                dst_ports=PortRange.single(7777),
                symmetric=True,
            )
            ruleset = padded_ruleset(1, action_rule=deny_attacker)
            from repro.firewall.builders import padding_rule

            with ruleset.mutate() as edit:
                edit.extend(padding_rule(100 + index) for index in range(30))
                edit.append(
                    Rule(
                        action=Action.ALLOW,
                        protocol=IpProtocol.TCP,
                        dst_ports=PortRange.single(5001),
                        symmetric=True,
                    )
                )
            bed.install_target_policy(ruleset)
            IperfServer(bed.target)
            flood = FloodGenerator(bed.attacker, spec)
            flood.start(bed.target.ip, rate_pps=20000)
            bed.run(0.2)
            session = IperfClient(bed.client).start_tcp(bed.target.ip, duration=0.4)
            bed.run(0.45)
            return session.result().mbps

        # Naive flood to the denied port: cheap (depth 1), tolerated.
        naive = min_flood_with_spec(FloodSpec(kind=FloodKind.TCP_ACK, dst_port=7777))
        # Spoofed flood to the allowed service port: traverses the whole
        # table and is admitted — far more damaging.
        spoofed = min_flood_with_spec(FloodSpec(kind=FloodKind.TCP_ACK, dst_port=5001))
        assert spoofed < naive * 0.7


class TestVpgChannelStory:
    def test_http_over_vpg_is_encrypted_and_works(self):
        settings = MeasurementSettings(http_duration=0.5)
        validator = FloodToleranceValidator(DeviceKind.ADF, settings)
        bed = validator._build_testbed(vpg_count=1)
        validator._install_vpg_policies(bed, 1, port=80)
        HttpServer(bed.target, port=80, pages={"/": 8192})

        from repro.net.capture import CaptureTap

        tap = CaptureTap(frame_filter=lambda frame: frame.ip is not None)
        bed.topology.link_for("target").add_tap(tap)

        session = HttpLoadClient(bed.client).start(bed.target.ip, duration=0.5)
        bed.run(0.6)
        result = session.result()
        assert result.completed > 5
        # Every HTTP frame on the wire is VPG-encapsulated.
        http_frames = [
            captured
            for captured in tap.frames
            if captured.frame.ip.protocol != IpProtocol.VPG
        ]
        assert http_frames == []
        # And no plaintext of the request leaked.
        for captured in tap.frames:
            wire = captured.frame.ip.payload.to_bytes()
            assert b"GET /" not in wire

    def test_vpg_protects_against_unauthorized_peer(self):
        validator = FloodToleranceValidator(
            DeviceKind.ADF, MeasurementSettings(duration=0.3)
        )
        bed = validator._build_testbed(vpg_count=1)
        validator._install_vpg_policies(bed, 1, port=5001)
        IperfServer(bed.target)
        # The attacker (no VPG membership, plaintext TCP) cannot reach
        # the protected service.
        refused = []
        conn = bed.attacker.tcp.connect(bed.target.ip, 5001)
        conn.on_refused = lambda c: refused.append(True)
        # SYN retries back off 1+2+4+8+16 s before the attempt fails.
        bed.run(35.0)
        assert refused  # SYNs never pass the target's ADF
        assert bed.target.nic.rx_denied > 0


class TestOraclePolicyStory:
    """§4.5: a realistic (Oracle) policy cannot stay under 8 rules, so the
    deployment is inherently floodable at low rates."""

    def test_oracle_policy_is_deep_and_floodable(self):
        bed = Testbed(device=DeviceKind.EFW)
        ruleset = oracle_ruleset(bed.target.ip)
        # Append the iperf measurement rule (administrators would allow
        # their measurement service too).
        with ruleset.mutate() as edit:
            edit.insert(
                len(ruleset.rules) - 1,
                Rule(
                    action=Action.ALLOW,
                    protocol=IpProtocol.TCP,
                    dst_ports=PortRange.single(5001),
                    symmetric=True,
                ),
            )
        assert ruleset.table_size >= 31
        bed.install_target_policy(ruleset)
        IperfServer(bed.target)
        # TNS-listener flood (allowed by the policy) at a rate easily
        # reachable even on 10 Mbps Ethernet.
        flood = FloodGenerator(
            bed.attacker, FloodSpec(kind=FloodKind.TCP_ACK, dst_port=1521)
        )
        flood.start(bed.target.ip, rate_pps=14000)
        bed.run(0.2)
        session = IperfClient(bed.client).start_tcp(bed.target.ip, duration=0.4)
        bed.run(0.45)
        assert session.result().mbps < 10


class TestMixedWorkload:
    def test_iperf_and_http_share_the_testbed(self):
        bed = Testbed(device=DeviceKind.EFW)
        ruleset = padded_ruleset(
            4,
            action_rule=Rule(
                action=Action.ALLOW, protocol=IpProtocol.TCP, symmetric=True
            ),
        )
        bed.install_target_policy(ruleset)
        IperfServer(bed.target)
        HttpServer(bed.target, port=80)
        iperf_session = IperfClient(bed.client).start_tcp(bed.target.ip, duration=0.5)
        http_session = HttpLoadClient(bed.attacker).start(bed.target.ip, duration=0.5)
        bed.run(0.6)
        assert iperf_session.result().mbps > 30
        assert http_session.result().completed > 5
