"""Tests for the NIC models: standard, embedded cost engine, EFW, ADF."""

import pytest

from repro import calibration
from repro.crypto.keys import VpgKeyStore
from repro.firewall.builders import allow_all, deny_all, padded_ruleset, service_rule
from repro.firewall.rules import Action, PortRange, Rule, VpgRule
from repro.firewall.ruleset import RuleSet
from repro.host.host import Host
from repro.net.addresses import Ipv4Address, MacAddress
from repro.net.packet import IpProtocol, Ipv4Packet, TcpSegment, UdpDatagram
from repro.net.topology import StarTopology
from repro.nic.adf import AdfNic
from repro.nic.efw import EfwNic
from repro.nic.standard import StandardNic
from repro.sim.rng import RngRegistry


def build_pair(sim, target_nic_factory):
    """alice (standard NIC) talking to bob (NIC under test)."""
    rng = RngRegistry(1)
    topo = StarTopology(sim)
    hosts = {}
    for index, (name, factory) in enumerate(
        [("alice", lambda: StandardNic(sim)), ("bob", target_nic_factory)], start=1
    ):
        host = Host(sim, name, Ipv4Address(f"10.0.0.{index}"), MacAddress.from_index(index), rng)
        nic = factory()
        nic.attach(topo.add_station(name))
        host.attach_nic(nic)
        hosts[name] = host
    for a in hosts.values():
        for b in hosts.values():
            if a is not b:
                a.ip_layer.arp_table[b.ip] = b.mac
    return hosts["alice"], hosts["bob"]


def udp_to(host, target, port, size=10):
    packet = Ipv4Packet(src=host.ip, dst=target.ip, payload=UdpDatagram(4000, port, payload_size=size))
    host.ip_layer.send_packet(packet)


class TestStandardNic:
    def test_passthrough_delivery(self, sim):
        alice, bob = build_pair(sim, lambda: StandardNic(sim))
        got = []
        bob.udp.bind(7000, lambda *args: got.append(args))
        udp_to(alice, bob, 7000)
        sim.run(until=0.1)
        assert len(got) == 1

    def test_frames_for_other_macs_ignored(self, sim):
        alice, bob = build_pair(sim, lambda: StandardNic(sim))
        from repro.net.packet import EthernetFrame

        packet = Ipv4Packet(src=alice.ip, dst=bob.ip, payload=UdpDatagram(1, 2))
        frame = EthernetFrame(
            src_mac=alice.mac, dst_mac=MacAddress.from_index(77), payload=packet
        )
        bob.nic.receive_frame(frame, None)
        assert bob.packets_delivered == 0


class TestEmbeddedPolicyEnforcement:
    def test_no_policy_passes_everything(self, sim):
        alice, bob = build_pair(sim, lambda: EfwNic(sim))
        got = []
        bob.udp.bind(7000, lambda *args: got.append(args))
        udp_to(alice, bob, 7000)
        sim.run(until=0.1)
        assert len(got) == 1

    def test_allow_all_policy_delivers_and_counts(self, sim):
        alice, bob = build_pair(sim, lambda: EfwNic(sim))
        bob.nic.install_policy(allow_all())
        got = []
        bob.udp.bind(7000, lambda *args: got.append(args))
        udp_to(alice, bob, 7000)
        sim.run(until=0.1)
        assert len(got) == 1
        assert bob.nic.rx_allowed == 1

    def test_deny_policy_drops_inbound(self, sim):
        alice, bob = build_pair(sim, lambda: EfwNic(sim, lockup_enabled=False))
        bob.nic.install_policy(deny_all())
        got = []
        bob.udp.bind(7000, lambda *args: got.append(args))
        udp_to(alice, bob, 7000)
        sim.run(until=0.1)
        assert got == []
        assert bob.nic.rx_denied == 1

    def test_egress_filtering_applies(self, sim):
        alice, bob = build_pair(sim, lambda: EfwNic(sim, lockup_enabled=False))
        # Allow inbound traffic to port 7000 only (asymmetric): bob's
        # outbound reply must be denied by the default.
        rule = Rule(
            action=Action.ALLOW,
            protocol=IpProtocol.UDP,
            dst_ports=PortRange.single(7000),
            symmetric=False,
        )
        bob.nic.install_policy(RuleSet([rule]))
        bob.udp.bind(7000, lambda *args: None)
        sock = bob.udp.bind(0)
        sock.send(alice.ip, 9999, size=4)
        sim.run(until=0.1)
        assert bob.nic.tx_denied == 1

    def test_symmetric_rule_allows_response_out(self, sim):
        alice, bob = build_pair(sim, lambda: EfwNic(sim, lockup_enabled=False))
        rule = Rule(
            action=Action.ALLOW,
            protocol=IpProtocol.TCP,
            dst_ports=PortRange.single(5001),
            symmetric=True,
        )
        bob.nic.install_policy(RuleSet([rule]))
        # A bare TCP segment to a closed-but-allowed port elicits a RST,
        # which the symmetric rule lets back out.
        packet = Ipv4Packet(
            src=alice.ip, dst=bob.ip, payload=TcpSegment(src_port=4444, dst_port=5001)
        )
        alice.ip_layer.send_packet(packet)
        sim.run(until=0.1)
        assert bob.nic.tx_allowed == 1
        assert bob.nic.tx_denied == 0

    def test_efw_rejects_vpg_rules(self, sim):
        _, bob = build_pair(sim, lambda: EfwNic(sim))
        vpg_policy = RuleSet([VpgRule(action=Action.ALLOW, vpg_id=1)])
        with pytest.raises(ValueError):
            bob.nic.install_policy(vpg_policy, key_store=VpgKeyStore())

    def test_vpg_rules_require_key_store(self, sim):
        _, bob = build_pair(sim, lambda: AdfNic(sim))
        vpg_policy = RuleSet([VpgRule(action=Action.ALLOW, vpg_id=1)])
        with pytest.raises(ValueError):
            bob.nic.install_policy(vpg_policy)

    def test_clear_policy_restores_passthrough(self, sim):
        alice, bob = build_pair(sim, lambda: EfwNic(sim, lockup_enabled=False))
        bob.nic.install_policy(deny_all())
        bob.nic.clear_policy()
        got = []
        bob.udp.bind(7000, lambda *args: got.append(args))
        udp_to(alice, bob, 7000)
        sim.run(until=0.1)
        assert len(got) == 1


class TestEmbeddedCostModel:
    def test_service_time_formula(self):
        model = calibration.EFW_COST_MODEL
        base = model.service_time(frame_bytes=64, rules_traversed=1)
        deeper = model.service_time(frame_bytes=64, rules_traversed=64)
        bigger = model.service_time(frame_bytes=1518, rules_traversed=1)
        assert deeper - base == pytest.approx(63 * model.c_rule)
        assert bigger - base == pytest.approx((1518 - 64) * model.c_byte)

    def test_vpg_cost_only_when_matched(self):
        model = calibration.ADF_COST_MODEL
        plain = model.service_time(frame_bytes=1518, rules_traversed=2)
        crypto = model.service_time(
            frame_bytes=1518, rules_traversed=2, vpg_bytes=1500, vpg_matched=True
        )
        assert crypto - plain == pytest.approx(model.c_vpg0 + 1500 * model.c_vpg_byte)

    def test_adf_per_rule_cost_exceeds_efw(self):
        assert calibration.ADF_COST_MODEL.c_rule > calibration.EFW_COST_MODEL.c_rule

    def test_capacity_closed_form(self):
        model = calibration.EFW_COST_MODEL
        assert model.capacity_pps(64, 1) == pytest.approx(
            1.0 / model.service_time(64, 1)
        )

    def test_efw_sustains_line_rate_at_one_rule(self):
        # The paper: with one rule the EFW supports full bandwidth.
        from repro.sim import units

        capacity = calibration.EFW_COST_MODEL.capacity_pps(1518, 1)
        assert capacity > units.MAX_FRAME_RATE_1518B

    def test_efw_cannot_sustain_line_rate_at_64_rules(self):
        from repro.sim import units

        capacity = calibration.EFW_COST_MODEL.capacity_pps(1518, 64)
        assert capacity < units.MAX_FRAME_RATE_1518B

    def test_ring_overflow_under_burst(self, sim):
        alice, bob = build_pair(sim, lambda: EfwNic(sim, ring_size=8))
        bob.nic.install_policy(padded_ruleset(64, action_rule=Rule(action=Action.ALLOW)))
        bob.udp.bind(7000, lambda *args: None)
        for _ in range(200):
            udp_to(alice, bob, 7000, size=10)
        sim.run(until=0.5)
        assert bob.nic.ring_drops > 0


class TestVpgDataPath:
    def _vpg_pair(self, sim):
        alice, bob = build_pair(sim, lambda: AdfNic(sim))
        # alice needs an ADF too; rebuild with both embedded.
        return alice, bob

    def test_end_to_end_encrypted_channel(self, sim):
        rng = RngRegistry(1)
        topo = StarTopology(sim)
        store = VpgKeyStore()
        hosts = {}
        for index, name in enumerate(["alice", "bob"], start=1):
            host = Host(sim, name, Ipv4Address(f"10.0.0.{index}"), MacAddress.from_index(index), rng)
            nic = AdfNic(sim, name=f"{name}.adf")
            nic.attach(topo.add_station(name))
            host.attach_nic(nic)
            hosts[name] = host
        for a in hosts.values():
            for b in hosts.values():
                if a is not b:
                    a.ip_layer.arp_table[b.ip] = b.mac
        alice, bob = hosts["alice"], hosts["bob"]
        vpg = VpgRule(
            action=Action.ALLOW,
            protocol=IpProtocol.UDP,
            dst_ports=PortRange.single(7000),
            vpg_id=42,
        )
        alice.nic.install_policy(RuleSet([vpg]), key_store=store)
        bob.nic.install_policy(RuleSet([vpg]), key_store=store)
        got = []
        bob.udp.bind(7000, lambda src, sport, size, data: got.append((size, data)))

        # Tap the wire: frames must be protocol-50 with no visible ports.
        from repro.net.capture import CaptureTap

        tap = CaptureTap()
        topo.link_for("bob").add_tap(tap)

        sock = alice.udp.bind(0)
        sock.send(bob.ip, 7000, size=32, data=b"secret")
        sim.run(until=0.1)
        assert got == [(32, b"secret")]
        assert bob.nic.vpg_opened == 1
        assert alice.nic.tx_allowed == 1
        data_frames = [
            captured for captured in tap.frames if captured.frame.ip is not None
        ]
        assert data_frames
        wire_packet = data_frames[0].frame.ip
        assert wire_packet.protocol == IpProtocol.VPG
        assert wire_packet.flow()[2] == 0 and wire_packet.flow()[4] == 0

    def test_unmatched_vpg_packet_dropped(self, sim):
        rng = RngRegistry(1)
        topo = StarTopology(sim)
        store = VpgKeyStore()
        hosts = {}
        for index, name in enumerate(["alice", "bob"], start=1):
            host = Host(sim, name, Ipv4Address(f"10.0.0.{index}"), MacAddress.from_index(index), rng)
            nic = AdfNic(sim, name=f"{name}.adf")
            nic.attach(topo.add_station(name))
            host.attach_nic(nic)
            hosts[name] = host
        for a in hosts.values():
            for b in hosts.values():
                if a is not b:
                    a.ip_layer.arp_table[b.ip] = b.mac
        alice, bob = hosts["alice"], hosts["bob"]
        sender_vpg = VpgRule(action=Action.ALLOW, protocol=IpProtocol.UDP, vpg_id=42)
        receiver_vpg = VpgRule(action=Action.ALLOW, protocol=IpProtocol.UDP, vpg_id=43)
        alice.nic.install_policy(RuleSet([sender_vpg]), key_store=store)
        bob.nic.install_policy(RuleSet([receiver_vpg]), key_store=store)
        got = []
        bob.udp.bind(7000, lambda *args: got.append(args))
        sock = alice.udp.bind(0)
        sock.send(bob.ip, 7000, size=8)
        sim.run(until=0.1)
        assert got == []
        assert bob.nic.rx_denied == 1


class TestLockupFault:
    def _flooded_efw(self, sim, rate_pps, duration=1.0, lockup_enabled=True):
        alice, bob = build_pair(sim, lambda: EfwNic(sim, lockup_enabled=lockup_enabled))
        bob.nic.install_policy(deny_all())
        from repro.sim.timer import PeriodicTimer

        timer = PeriodicTimer(sim, 1.0 / rate_pps, lambda: udp_to(alice, bob, 9999, size=4))
        timer.start(0.0)
        sim.run(until=duration)
        timer.stop()
        return alice, bob

    def test_wedges_above_threshold(self, sim):
        _, bob = self._flooded_efw(sim, rate_pps=2000)
        assert bob.nic.wedged
        assert bob.nic.fault.lockups == 1

    def test_survives_below_threshold(self, sim):
        _, bob = self._flooded_efw(sim, rate_pps=500)
        assert not bob.nic.wedged

    def test_wedged_card_processes_nothing(self, sim):
        alice, bob = self._flooded_efw(sim, rate_pps=2000)
        got = []
        bob.udp.bind(7000, lambda *args: got.append(args))
        delivered_before = bob.nic.packets_delivered
        udp_to(alice, bob, 7000)
        sim.run(until=sim.now + 0.1)
        assert bob.nic.packets_delivered == delivered_before
        assert bob.nic.wedged_drops > 0

    def test_agent_restart_recovers(self, sim):
        alice, bob = self._flooded_efw(sim, rate_pps=2000)
        assert bob.nic.wedged
        bob.nic.restart_agent()
        assert not bob.nic.wedged
        bob.nic.install_policy(allow_all())
        got = []
        bob.udp.bind(7000, lambda *args: got.append(args))
        udp_to(alice, bob, 7000)
        sim.run(until=sim.now + 0.1)
        assert len(got) == 1
        assert bob.nic.agent_restarts == 1

    def test_ablation_disables_lockup(self, sim):
        _, bob = self._flooded_efw(sim, rate_pps=2000, lockup_enabled=False)
        assert not bob.nic.wedged

    def test_adf_has_no_lockup(self, sim):
        alice, bob = build_pair(sim, lambda: AdfNic(sim))
        bob.nic.install_policy(deny_all())
        from repro.sim.timer import PeriodicTimer

        timer = PeriodicTimer(sim, 1.0 / 2000, lambda: udp_to(alice, bob, 9999, size=4))
        timer.start(0.0)
        sim.run(until=1.0)
        timer.stop()
        assert not bob.nic.wedged

    def test_fault_parameters_validated(self, sim):
        from repro.nic.faults import DenyFloodLockupFault

        _, bob = build_pair(sim, lambda: EfwNic(sim))
        with pytest.raises(ValueError):
            DenyFloodLockupFault(bob.nic, rate_threshold=0)
        with pytest.raises(ValueError):
            DenyFloodLockupFault(bob.nic, window=0)
