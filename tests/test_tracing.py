"""Tests for structured tracing of the simulation's hot paths."""

from repro.apps.flood import FloodGenerator, FloodKind, FloodSpec
from repro.core.testbed import DeviceKind, Testbed
from repro.firewall.builders import deny_all


class TestTracing:
    def test_tracing_off_by_default(self):
        bed = Testbed(device=DeviceKind.EFW)
        bed.install_target_policy(deny_all())
        flood = FloodGenerator(bed.attacker, FloodSpec(kind=FloodKind.UDP, dst_port=9))
        flood.start(bed.target.ip, rate_pps=500, duration=0.1)
        bed.run(0.2)
        assert len(bed.sim.tracer) == 0

    def test_rx_deny_traced(self):
        bed = Testbed(device=DeviceKind.EFW, efw_lockup_enabled=False)
        bed.sim.tracer.enabled = True
        bed.install_target_policy(deny_all())
        flood = FloodGenerator(bed.attacker, FloodSpec(kind=FloodKind.UDP, dst_port=9))
        flood.start(bed.target.ip, rate_pps=500, duration=0.1)
        bed.run(0.2)
        denies = bed.sim.tracer.records(event="rx-deny")
        assert len(denies) == bed.target.nic.rx_denied
        assert denies[0].source == "target.efw"
        assert "UDP" in denies[0].fields["packet"]

    def test_ring_drops_traced(self):
        bed = Testbed(device=DeviceKind.EFW, ring_size=4, efw_lockup_enabled=False)
        bed.sim.tracer.enabled = True
        bed.install_target_policy(deny_all())
        flood = FloodGenerator(bed.attacker, FloodSpec(kind=FloodKind.UDP, dst_port=9))
        flood.start(bed.target.ip, rate_pps=120_000, duration=0.1)
        bed.run(0.2)
        drops = bed.sim.tracer.records(event="drop-full")
        assert len(drops) == bed.target.nic.ring_drops
        assert drops

    def test_lockup_pause_traced(self):
        bed = Testbed(device=DeviceKind.EFW)
        bed.sim.tracer.enabled = True
        bed.install_target_policy(deny_all())
        flood = FloodGenerator(bed.attacker, FloodSpec(kind=FloodKind.UDP, dst_port=9))
        flood.start(bed.target.ip, rate_pps=2000, duration=1.0)
        bed.run(1.1)
        assert bed.target.nic.wedged
        pauses = bed.sim.tracer.records(event="pause")
        assert len(pauses) == 1

    def test_tcp_retransmits_traced(self, mininet):
        from tests.test_tcp_recovery import FrameDropper

        mininet.sim.tracer.enabled = True
        alice, bob = mininet["alice"], mininet["bob"]
        bob.tcp.listen(5001, lambda conn: None)
        FrameDropper(bob.nic, {5})
        conn = alice.tcp.connect(bob.ip, 5001)
        conn.on_connected = lambda c: c.send(100_000)
        mininet.run(2.0)
        retransmits = mininet.sim.tracer.records(event="retransmit")
        assert len(retransmits) == conn.segments_retransmitted
        assert retransmits
        assert retransmits[0].fields["bytes"] > 0
