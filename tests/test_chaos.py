"""Tests for the chaos subsystem: faults, schedules, invariants, runtime."""

import pytest

from repro.apps.flood import FloodGenerator, FloodKind, FloodSpec
from repro.chaos import (
    AgentCrash,
    ChaosInjector,
    ChaosSchedule,
    InvariantMonitor,
    InvariantViolationError,
    LinkFlap,
    PacketCorruption,
    PolicyServerOutage,
    SwitchPortFail,
    build_scenario,
    chaos_active,
    note_flood,
)
from repro.chaos import runtime as chaos_runtime
from repro.chaos.faults import resolve_station
from repro.core.fleet import FleetSpec, FleetTestbed
from repro.core.methodology import MeasurementSettings
from repro.core.parallel import SweepExecutor, SweepPointSpec
from repro.core.testbed import DeviceKind, Testbed
from repro.firewall.builders import allow_all
from repro.policy.audit import AuditEventKind


@pytest.fixture(autouse=True)
def _no_leaked_activation():
    """Every test starts and ends with the chaos runtime inactive."""
    if chaos_active():
        chaos_runtime.deactivate(strict=False)
    yield
    if chaos_active():
        chaos_runtime.deactivate(strict=False)


def _efw_bed(seed=1, defended=False):
    bed = Testbed(device=DeviceKind.EFW, seed=seed, efw_lockup_enabled=False)
    bed.install_target_policy(allow_all())
    if defended:
        bed.enable_defense()
    return bed


# ---------------------------------------------------------------------------
# Fault units
# ---------------------------------------------------------------------------


class TestFaults:
    def test_link_flap_down_blackholes_then_restores(self):
        bed = _efw_bed()
        fault = LinkFlap(station="client", mode="down")
        link = bed.topology.link_for("client")
        fault.inject(bed)
        assert link.impairment is not None and link.impairment.down
        before = bed.target.nic.frames_received
        flood = FloodGenerator(bed.client, FloodSpec(kind=FloodKind.UDP, dst_port=7777))
        flood.start(bed.target.ip, 2000)
        bed.run(0.05)
        assert bed.target.nic.frames_received == before
        fault.clear(bed)
        assert link.impairment is None
        bed.run(0.05)
        assert bed.target.nic.frames_received > before
        flood.stop()

    def test_link_flap_loss_and_latency_modes(self):
        bed = _efw_bed()
        link = bed.topology.link_for("client")
        lossy = LinkFlap(station="client", mode="loss", loss_rate=0.5)
        lossy.inject(bed)
        assert link.impairment.loss_rate == 0.5
        lossy.clear(bed)
        slow = LinkFlap(station="client", mode="latency", extra_delay=0.004)
        slow.inject(bed)
        assert link.impairment.extra_delay == 0.004
        slow.clear(bed)
        assert link.impairment is None
        with pytest.raises(ValueError):
            LinkFlap(mode="sideways")

    def test_switch_port_fail_on_star_topology(self):
        bed = _efw_bed()
        fault = SwitchPortFail(station="client")
        fault.inject(bed)
        assert bed.topology.station_port_failed("client")
        fault.clear(bed)
        assert not bed.topology.station_port_failed("client")

    def test_switch_port_fail_on_fleet_fabric_via_alias(self):
        fleet = FleetTestbed(FleetSpec(targets=1, attackers=1), seed=3)
        assert resolve_station(fleet, "client") == "c000"
        fault = SwitchPortFail(station="client")
        fault.inject(fleet)
        assert fleet.fabric.station_port_failed("c000")
        fault.clear(fleet)
        assert not fleet.fabric.station_port_failed("c000")

    def test_unknown_station_is_rejected(self):
        bed = _efw_bed()
        with pytest.raises(ValueError):
            LinkFlap(station="nonesuch").inject(bed)

    def test_corruption_exercises_the_checksum_drop_path(self):
        bed = _efw_bed()
        fault = PacketCorruption(station="target")
        fault.inject(bed)
        flood = FloodGenerator(bed.client, FloodSpec(kind=FloodKind.UDP, dst_port=7777))
        flood.start(bed.target.ip, 5000)
        bed.run(0.05)
        flood.stop()
        fault.clear(bed)
        assert bed.target.nic.checksum_drops > 0

    def test_policy_outage_blocks_pushes_until_cleared(self):
        bed = _efw_bed()
        fault = PolicyServerOutage()
        fault.inject(bed)
        outcome = bed.policy_server.push_policy(
            "target", inline=False, retries=20, ack_timeout=0.03
        )
        bed.run(0.12)
        assert outcome.status == "pending"
        assert outcome.attempts > 1
        fault.clear(bed)
        bed.run(0.3)
        assert outcome.status == "acked"

    def test_agent_crash_fails_pushes_until_restarted(self):
        bed = _efw_bed()
        server = bed.policy_server
        AgentCrash(station="target").inject(bed)
        assert server.agent_crashed("target")
        outcome = server.push_policy("target", inline=True)
        assert outcome.failed
        events = server.audit.events(AuditEventKind.PUSH_FAILED, "target")
        assert events[-1].details["reason"] == "agent-crashed"
        server.restart_agent("target")
        assert not server.agent_crashed("target")
        assert bed.target.nic.policy is not None

    def test_defense_restart_sweep_revives_a_crashed_agent(self):
        bed = _efw_bed(defended=True)
        AgentCrash(station="target").inject(bed)
        bed.defense._restart_if_wedged("target")
        assert not bed.policy_server.agent_crashed("target")
        assert bed.defense.agent_restarts == 1


# ---------------------------------------------------------------------------
# Schedules and the injector
# ---------------------------------------------------------------------------


class TestInjector:
    def test_schedule_rejects_non_faults(self):
        with pytest.raises(TypeError):
            ChaosSchedule(name="bad", faults=("not a fault",))

    def test_build_scenario_names(self):
        assert build_scenario("none").faults == ()
        compound = build_scenario("compound", start=0.02, duration=0.05)
        assert [fault.kind for fault in compound.faults] == [
            "link-flap",
            "policy-outage",
        ]
        with pytest.raises(ValueError):
            build_scenario("nonesuch")

    def test_injector_fires_clears_and_audits(self):
        bed = _efw_bed()
        injector = ChaosInjector(bed, build_scenario("link-flap", start=0.02, duration=0.05))
        injector.arm()
        bed.run(0.04)
        assert not injector.quiescent
        assert bed.topology.link_for("client").impairment is not None
        bed.run(0.06)
        assert injector.quiescent
        assert (injector.injected, injector.cleared) == (1, 1)
        assert [(t.action, t.kind) for t in injector.log] == [
            ("inject", "link-flap"),
            ("clear", "link-flap"),
        ]
        audit = bed.policy_server.audit
        injected = audit.events(AuditEventKind.CHAOS_FAULT_INJECTED, "client")
        cleared = audit.events(AuditEventKind.CHAOS_FAULT_CLEARED, "client")
        assert len(injected) == 1 and injected[0].details["fault"] == "link-flap"
        assert len(cleared) == 1
        assert injector.last_cleared_at == pytest.approx(0.07)

    def test_disarm_clears_active_faults(self):
        bed = _efw_bed()
        injector = ChaosInjector(bed, build_scenario("link-flap", start=0.0, duration=5.0))
        injector.arm()
        bed.run(0.02)
        assert not injector.quiescent
        injector.disarm()
        assert injector.quiescent
        assert bed.topology.link_for("client").impairment is None

    def test_double_arm_raises(self):
        bed = _efw_bed()
        injector = ChaosInjector(bed, build_scenario("none"))
        injector.arm()
        with pytest.raises(RuntimeError):
            injector.arm()


# ---------------------------------------------------------------------------
# Invariant monitors
# ---------------------------------------------------------------------------


class TestInvariants:
    def test_clean_defended_flood_run_has_no_violations(self):
        bed = _efw_bed(defended=True)
        monitor = InvariantMonitor(bed, mode="warn")
        flood = FloodGenerator(
            bed.attacker, FloodSpec(kind=FloodKind.UDP, dst_port=7777)
        )
        flood.start(bed.target.ip, 20000)
        bed.run(0.6)
        flood.stop()
        violations = monitor.finalize()
        assert violations == []
        assert monitor.checks_run > 5

    def test_seeded_counter_corruption_is_caught(self):
        bed = _efw_bed()
        monitor = InvariantMonitor(bed, mode="warn", check_interval=0.02)
        bed.target.nic.packets_delivered += 1000
        bed.run(0.05)
        violations = monitor.finalize()
        assert violations
        assert violations[0].invariant == "packet-conservation"
        assert violations[0].subject == bed.target.nic.name

    def test_fail_fast_raises_out_of_the_run(self):
        bed = _efw_bed()
        monitor = InvariantMonitor(bed, mode="fail-fast", check_interval=0.02)
        bed.target.nic.packets_delivered += 1000
        with pytest.raises(InvariantViolationError) as excinfo:
            bed.run(0.05)
        assert excinfo.value.violation.invariant == "packet-conservation"
        monitor.finalize(strict=False)

    def test_acked_but_uninstalled_policy_violates_convergence(self):
        bed = _efw_bed()  # install_target_policy acked the inline push
        monitor = InvariantMonitor(bed, mode="warn", check_interval=0.02)
        bed.target.nic.clear_policy()
        bed.run(0.05)
        violations = monitor.finalize()
        assert any(v.invariant == "policy-convergence" for v in violations)

    def test_active_fault_suspends_convergence(self):
        bed = _efw_bed()
        injector = ChaosInjector(bed, build_scenario("link-flap", start=0.0, duration=5.0))
        injector.arm()
        monitor = InvariantMonitor(
            bed, mode="fail-fast", check_interval=0.02, injector=injector
        )
        bed.target.nic.clear_policy()
        bed.run(0.05)  # does not raise: the fault window suspends the check
        injector.disarm()
        monitor.finalize(strict=False)

    def test_undetected_sustained_flood_violates_liveness(self):
        bed = _efw_bed(defended=True)
        # Lobotomise the detector so the flood can never be noticed.
        bed.defense.detector._timer.stop()
        monitor = InvariantMonitor(bed, mode="warn", liveness_window=0.2)
        flood = FloodGenerator(
            bed.attacker, FloodSpec(kind=FloodKind.UDP, dst_port=7777)
        )
        flood.start(bed.target.ip, 30000)
        bed.run(0.6)
        flood.stop()
        violations = monitor.finalize()
        assert any(v.invariant == "defense-liveness" for v in violations)
        # Settled: the violation files once, not once per tick.
        assert sum(1 for v in violations if v.invariant == "defense-liveness") == 1

    def test_note_flood_without_monitors_is_a_noop(self):
        bed = _efw_bed()
        note_flood(bed.sim, "target", 1000.0)  # must not raise

    def test_invalid_mode_rejected(self):
        bed = _efw_bed()
        with pytest.raises(ValueError):
            InvariantMonitor(bed, mode="explode")


# ---------------------------------------------------------------------------
# Runtime activation (the sweep-worker surface)
# ---------------------------------------------------------------------------


class TestRuntime:
    def test_activation_arms_every_new_testbed(self):
        chaos_runtime.activate(chaos="link-flap", invariants="warn")
        bed = _efw_bed()
        assert bed.chaos is not None
        assert bed.invariant_monitor is not None
        bed.run(0.3)
        snapshot = chaos_runtime.deactivate()
        assert (snapshot.faults_injected, snapshot.faults_cleared) == (1, 1)
        assert snapshot.clean
        assert snapshot.scenario == "link-flap"

    def test_double_activation_raises(self):
        chaos_runtime.activate(invariants="warn")
        with pytest.raises(RuntimeError):
            chaos_runtime.activate(invariants="warn")

    def test_unknown_scenario_and_mode_rejected(self):
        with pytest.raises(ValueError):
            chaos_runtime.activate(chaos="nonesuch")
        with pytest.raises(ValueError):
            chaos_runtime.activate(invariants="nonesuch")
        assert not chaos_active()

    def test_inactive_attach_is_a_noop(self):
        bed = _efw_bed()
        assert getattr(bed, "chaos", None) is None
        assert getattr(bed, "invariant_monitor", None) is None

    def test_deactivate_without_window_returns_none(self):
        assert chaos_runtime.deactivate() is None


def _probe_point(seed):
    """A picklable sweep point: flood an EFW bed, return its counters."""
    bed = Testbed(device=DeviceKind.EFW, seed=seed, efw_lockup_enabled=False)
    bed.install_target_policy(allow_all())
    flood = FloodGenerator(bed.client, FloodSpec(kind=FloodKind.UDP, dst_port=7777))
    flood.start(bed.target.ip, 3000)
    bed.run(0.2)
    flood.stop()
    nic = bed.target.nic
    return (nic.frames_received, nic.packets_delivered, nic.rx_allowed)


class TestExecutorWiring:
    def _specs(self):
        return [
            SweepPointSpec(label=f"probe {seed}", fn=_probe_point, kwargs={"seed": seed})
            for seed in (1, 2)
        ]

    def test_invariants_leave_results_identical(self):
        plain = SweepExecutor(jobs=1).run(self._specs())
        watched = SweepExecutor(jobs=1, invariants="warn").run(self._specs())
        assert watched == plain

    def test_chaos_scenario_actually_perturbs_the_sweep(self):
        plain = SweepExecutor(jobs=1).run(self._specs())
        flapped = SweepExecutor(jobs=1, chaos="link-flap").run(self._specs())
        # The client link goes down mid-flood: fewer frames arrive.
        assert flapped[0][0] < plain[0][0]

    def test_worker_deactivates_between_points(self):
        SweepExecutor(jobs=1, chaos="link-flap", invariants="warn").run(self._specs())
        assert not chaos_active()


# ---------------------------------------------------------------------------
# The chaos experiment
# ---------------------------------------------------------------------------


def _mini_preset(scenarios=("none", "compound"), duration=0.1, slices=3):
    from repro.experiments.presets import Preset

    return Preset(
        name="quick",
        settings=MeasurementSettings(duration=duration),
        chaos_scenarios=scenarios,
        recovery_slices=slices,
    )


@pytest.fixture(scope="module")
def mini_grid():
    """One serial run of the trimmed chaos grid, shared across tests."""
    from repro.experiments import chaos_faults
    from repro.experiments.config import RunConfig

    return chaos_faults.run(RunConfig(preset=_mini_preset(), jobs=1))


class TestChaosExperiment:
    def test_compound_faults_measurably_degrade_the_defended_run(self, mini_grid):
        clean = mini_grid.point_for("none", "efw", defended=True)
        compound = mini_grid.point_for("compound", "efw", defended=True)
        # The faulted window is measurably worse than the clean flood...
        assert compound.faulted_mbps < 0.5 * clean.faulted_mbps
        # ...yet the defense still converges once the faults clear.
        assert compound.goodput_retention >= 0.8
        assert compound.time_to_recover is not None
        assert compound.faults_injected == 2
        assert compound.faults_cleared == 2

    def test_outage_scenarios_record_the_repush_backoff_chain(self, mini_grid):
        compound = mini_grid.point_for("compound", "efw", defended=False)
        # The chain was exercised: waits were armed and a status recorded
        # ("pending" is legitimate — a wedged card never acks).
        assert compound.outage_push_status in ("acked", "failed", "pending")
        assert compound.outage_push_backoff_s
        assert compound.outage_push_backoff_s == sorted(compound.outage_push_backoff_s)
        clean = mini_grid.point_for("none", "efw", defended=False)
        assert clean.outage_push_status is None

    def test_undefended_efw_stays_locked_up(self, mini_grid):
        undefended = mini_grid.point_for("none", "efw", defended=False)
        assert undefended.goodput_retention == 0.0
        assert undefended.wedged_at_end

    def test_results_identical_for_any_jobs_value(self, mini_grid):
        from repro.experiments import chaos_faults, results
        from repro.experiments.config import RunConfig

        parallel = chaos_faults.run(RunConfig(preset=_mini_preset(), jobs=2))
        assert results.to_json(parallel) == results.to_json(mini_grid)

    def test_checkpoint_resume_is_byte_identical(self, tmp_path):
        from repro.experiments import chaos_faults, results
        from repro.experiments.config import RunConfig

        preset = _mini_preset(scenarios=("compound",), duration=0.08, slices=2)
        path = str(tmp_path / "chaos.ckpt")
        first = chaos_faults.run(RunConfig(preset=preset, jobs=1, checkpoint=path))
        resumed = chaos_faults.run(RunConfig(preset=preset, jobs=1, checkpoint=path))
        assert results.to_json(resumed) == results.to_json(first)

    def test_quick_preset_passes_fail_fast_invariants(self):
        from repro.experiments import chaos_faults
        from repro.experiments.config import RunConfig

        preset = _mini_preset(scenarios=("link-flap",), duration=0.08, slices=2)
        result = chaos_faults.run(
            RunConfig(preset=preset, jobs=1, invariants="fail-fast")
        )
        assert len(result.points) == 4
        assert not chaos_active()


class TestCliFlags:
    def test_unknown_chaos_scenario_rejected_at_parse_time(self, capsys):
        from repro.experiments import __main__ as cli

        with pytest.raises(SystemExit) as excinfo:
            cli.main(["chaos", "--chaos", "nonesuch"])
        assert excinfo.value.code == 2

    def test_preset_conflicting_with_quick_rejected(self, capsys):
        from repro.experiments import __main__ as cli

        with pytest.raises(SystemExit) as excinfo:
            cli.main(["fig2", "--quick", "--preset", "full"])
        assert excinfo.value.code == 2
