"""Tests for the crypto substrate: Feistel cipher, MAC, VPG encapsulation."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto.feistel import BLOCK_SIZE, FeistelCipher
from repro.crypto.keys import KEY_SIZE, VpgKeyStore
from repro.crypto.mac import TAG_SIZE, compute_tag, verify_tag
from repro.crypto.vpg import (
    VpgAuthError,
    VpgContext,
    VpgDecodeError,
    VpgSealedPayload,
)
from repro.net.addresses import Ipv4Address
from repro.net.packet import (
    IcmpMessage,
    IcmpType,
    IpProtocol,
    Ipv4Packet,
    RawPayload,
    TcpSegment,
    UdpDatagram,
)

SRC = Ipv4Address("10.0.0.2")
DST = Ipv4Address("10.0.0.3")
KEY = b"0123456789abcdef01234567"


class TestFeistelCipher:
    def test_block_roundtrip(self):
        cipher = FeistelCipher(KEY)
        block = b"\x01\x02\x03\x04\x05\x06\x07\x08"
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block

    def test_block_encryption_changes_bytes(self):
        cipher = FeistelCipher(KEY)
        block = b"\x00" * BLOCK_SIZE
        assert cipher.encrypt_block(block) != block

    def test_wrong_block_size_rejected(self):
        cipher = FeistelCipher(KEY)
        with pytest.raises(ValueError):
            cipher.encrypt_block(b"short")
        with pytest.raises(ValueError):
            cipher.decrypt_block(b"toolongtoolong")

    def test_cbc_roundtrip(self):
        cipher = FeistelCipher(KEY)
        plaintext = b"The quick brown fox jumps over the lazy dog"
        assert cipher.decrypt(cipher.encrypt(plaintext)) == plaintext

    def test_cbc_output_is_block_aligned(self):
        cipher = FeistelCipher(KEY)
        assert len(cipher.encrypt(b"x")) % BLOCK_SIZE == 0

    def test_different_keys_give_different_ciphertexts(self):
        plaintext = b"same plaintext bytes"
        a = FeistelCipher(b"key-a").encrypt(plaintext)
        b = FeistelCipher(b"key-b").encrypt(plaintext)
        assert a != b

    def test_sequence_binds_iv(self):
        cipher = FeistelCipher(KEY)
        plaintext = b"identical plaintext"
        assert cipher.encrypt(plaintext, sequence=1) != cipher.encrypt(plaintext, sequence=2)

    def test_wrong_key_fails_to_decrypt(self):
        ciphertext = FeistelCipher(b"key-a").encrypt(b"secret payload here!")
        wrong = FeistelCipher(b"key-b")
        try:
            recovered = wrong.decrypt(ciphertext)
        except ValueError:
            return  # padding check caught it
        assert recovered != b"secret payload here!"

    def test_bad_ciphertext_length_rejected(self):
        cipher = FeistelCipher(KEY)
        with pytest.raises(ValueError):
            cipher.decrypt(b"12345")
        with pytest.raises(ValueError):
            cipher.decrypt(b"")

    def test_empty_key_rejected(self):
        with pytest.raises(ValueError):
            FeistelCipher(b"")

    @given(st.binary(max_size=512), st.integers(0, 2**32 - 1))
    def test_roundtrip_property(self, plaintext, sequence):
        cipher = FeistelCipher(KEY)
        assert cipher.decrypt(cipher.encrypt(plaintext, sequence), sequence) == plaintext


class TestMac:
    def test_tag_length(self):
        assert len(compute_tag(KEY, b"data")) == TAG_SIZE

    def test_verify_accepts_valid_tag(self):
        tag = compute_tag(KEY, b"data")
        assert verify_tag(KEY, b"data", tag)

    def test_verify_rejects_tampered_data(self):
        tag = compute_tag(KEY, b"data")
        assert not verify_tag(KEY, b"dato", tag)

    def test_verify_rejects_wrong_key(self):
        tag = compute_tag(b"key-a", b"data")
        assert not verify_tag(b"key-b", b"data", tag)

    def test_verify_rejects_wrong_length_tag(self):
        assert not verify_tag(KEY, b"data", b"short")

    def test_empty_key_rejected(self):
        with pytest.raises(ValueError):
            compute_tag(b"", b"data")

    @given(st.binary(max_size=256))
    def test_tag_is_deterministic(self, data):
        assert compute_tag(KEY, data) == compute_tag(KEY, data)


class TestVpgContext:
    def _context_pair(self, vpg_id=7):
        store = VpgKeyStore()
        return store.context_for(vpg_id), store.context_for(vpg_id)

    def test_tcp_seal_open_roundtrip(self):
        sealer, opener = self._context_pair()
        inner = Ipv4Packet(
            src=SRC,
            dst=DST,
            payload=TcpSegment(src_port=1000, dst_port=80, seq=42, payload_size=1400, data=b"GET /"),
        )
        outer = sealer.seal(inner, SRC, DST)
        assert outer.protocol == IpProtocol.VPG
        opened = opener.open(outer)
        assert opened.flow() == inner.flow()
        assert opened.tcp.seq == 42
        assert opened.tcp.payload_size == 1400
        assert opened.tcp.data == b"GET /"

    def test_udp_and_icmp_roundtrip(self):
        sealer, opener = self._context_pair()
        for payload in (
            UdpDatagram(src_port=53, dst_port=53, payload_size=120),
            IcmpMessage(icmp_type=IcmpType.ECHO_REQUEST, payload_size=56),
        ):
            inner = Ipv4Packet(src=SRC, dst=DST, payload=payload)
            opened = opener.open(sealer.seal(inner, SRC, DST))
            assert opened.payload.size == payload.size

    def test_raw_payload_without_parseable_header_rejected_on_open(self):
        # The decapsulation side re-parses the decrypted inner headers;
        # a raw payload that does not decode as its declared protocol is
        # reported as a decode failure, not silently accepted.
        sealer, opener = self._context_pair()
        inner = Ipv4Packet(
            src=SRC,
            dst=DST,
            payload=RawPayload(size=500, data=b"prefix"),
            protocol=IpProtocol.UDP,
        )
        with pytest.raises(VpgDecodeError):
            opener.open(sealer.seal(inner, SRC, DST))

    def test_outer_size_accounts_for_overhead_not_payload_blowup(self):
        sealer, _ = self._context_pair()
        inner = Ipv4Packet(
            src=SRC, dst=DST, payload=TcpSegment(src_port=1, dst_port=2, payload_size=1400)
        )
        outer = sealer.seal(inner, SRC, DST)
        overhead = outer.size - inner.size
        assert 0 < overhead < 120  # clear header + cipher padding + tag

    def test_headers_are_encrypted_on_the_wire(self):
        sealer, _ = self._context_pair()
        inner = Ipv4Packet(
            src=SRC, dst=DST, payload=TcpSegment(src_port=4567, dst_port=8901)
        )
        outer = sealer.seal(inner, SRC, DST)
        wire = outer.payload.to_bytes()
        # The inner ports must not appear in clear anywhere in the payload.
        import struct

        assert struct.pack("!H", 4567) not in wire[:12]
        assert outer.flow()[2] == 0 and outer.flow()[4] == 0  # no ports visible

    def test_tampered_ciphertext_rejected(self):
        sealer, opener = self._context_pair()
        inner = Ipv4Packet(src=SRC, dst=DST, payload=UdpDatagram(1, 2, payload_size=32))
        outer = sealer.seal(inner, SRC, DST)
        sealed = outer.payload
        sealed.ciphertext = bytes(byte ^ 0xFF for byte in sealed.ciphertext)
        with pytest.raises(VpgAuthError):
            opener.open(outer)
        assert opener.auth_failures == 1

    def test_wrong_group_key_rejected(self):
        sealer = VpgKeyStore(b"master-a").context_for(7)
        opener = VpgKeyStore(b"master-b").context_for(7)
        inner = Ipv4Packet(src=SRC, dst=DST, payload=UdpDatagram(1, 2))
        with pytest.raises(VpgAuthError):
            opener.open(sealer.seal(inner, SRC, DST))

    def test_spi_mismatch_rejected(self):
        store = VpgKeyStore()
        sealer = store.context_for(7)
        opener = store.context_for(8)
        inner = Ipv4Packet(src=SRC, dst=DST, payload=UdpDatagram(1, 2))
        with pytest.raises(VpgDecodeError):
            opener.open(sealer.seal(inner, SRC, DST))

    def test_non_vpg_packet_rejected(self):
        _, opener = self._context_pair()
        plain = Ipv4Packet(src=SRC, dst=DST, payload=UdpDatagram(1, 2))
        with pytest.raises(VpgDecodeError):
            opener.open(plain)

    def test_sequence_increments_per_packet(self):
        sealer, _ = self._context_pair()
        inner = Ipv4Packet(src=SRC, dst=DST, payload=UdpDatagram(1, 2))
        first = sealer.seal(inner, SRC, DST)
        second = sealer.seal(inner, SRC, DST)
        assert second.payload.sequence == first.payload.sequence + 1
        assert first.payload.ciphertext != second.payload.ciphertext

    @given(
        payload_size=st.integers(0, 1460),
        data=st.binary(max_size=64),
        sport=st.integers(0, 65535),
        dport=st.integers(0, 65535),
    )
    def test_seal_open_roundtrip_property(self, payload_size, data, sport, dport):
        store = VpgKeyStore()
        sealer = store.context_for(3)
        opener = store.context_for(3)
        size = max(payload_size, len(data))
        inner = Ipv4Packet(
            src=SRC,
            dst=DST,
            payload=TcpSegment(src_port=sport, dst_port=dport, payload_size=size, data=data),
        )
        opened = opener.open(sealer.seal(inner, SRC, DST))
        assert opened.flow() == inner.flow()
        assert opened.tcp.payload_size == size
        assert opened.tcp.data[: len(data)] == data


class TestKeyStore:
    def test_keys_are_deterministic(self):
        assert VpgKeyStore(b"m").key_for(1) == VpgKeyStore(b"m").key_for(1)

    def test_keys_differ_per_group(self):
        store = VpgKeyStore()
        assert store.key_for(1) != store.key_for(2)

    def test_keys_differ_per_master(self):
        assert VpgKeyStore(b"a").key_for(1) != VpgKeyStore(b"b").key_for(1)

    def test_key_length(self):
        assert len(VpgKeyStore().key_for(9)) == KEY_SIZE

    def test_known_vpgs_sorted(self):
        store = VpgKeyStore()
        store.key_for(5)
        store.key_for(2)
        assert store.known_vpgs() == [2, 5]

    def test_empty_master_rejected(self):
        with pytest.raises(ValueError):
            VpgKeyStore(b"")

    def test_bad_vpg_id_rejected(self):
        with pytest.raises(ValueError):
            VpgContext(-1, KEY)
