"""Tests for the shared Preset contract and the unified run API."""

import pytest

from repro.core.methodology import MeasurementSettings
from repro.experiments import RunConfig, runner
from repro.experiments.presets import (
    FULL,
    QUICK,
    Preset,
    preset_for,
    resolve_preset,
)


class TestPreset:
    def test_full_defers_every_knob_to_module_defaults(self):
        assert FULL.name == "full"
        assert FULL.grid("depths", (1, 2)) == (1, 2)
        assert isinstance(FULL.measurement(), MeasurementSettings)

    def test_grid_prefers_the_preset_value(self):
        preset = Preset(name="tiny", depths=(4,))
        assert preset.grid("depths", (1, 2)) == (4,)
        assert preset.grid("vpg_counts", (1, 8)) == (1, 8)

    def test_measurement_returns_the_preset_settings(self):
        settings = MeasurementSettings(duration=0.25)
        assert Preset(name="t", settings=settings).measurement() is settings

    def test_presets_are_frozen(self):
        with pytest.raises(Exception):
            FULL.depths = (9,)

    def test_quick_grids_cover_every_registered_experiment(self):
        assert set(QUICK) == set(runner.experiment_ids())
        assert all(preset.name == "quick" for preset in QUICK.values())


class TestResolvePreset:
    def test_none_means_full(self):
        assert resolve_preset("fig2", None) is FULL

    def test_names_resolve_per_experiment(self):
        assert resolve_preset("fig2", "full") is FULL
        assert resolve_preset("fig3a", "quick") is QUICK["fig3a"]

    def test_preset_instances_pass_through(self):
        preset = Preset(name="custom")
        assert resolve_preset("fig2", preset) is preset

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            preset_for("fig2", "fast")

    def test_wrong_type_rejected(self):
        with pytest.raises(TypeError):
            resolve_preset("fig2", 3)


def _recording_entry(calls):
    def entry(config):
        calls.append(config)
        return "ran"

    return entry


class TestExperimentSpecRun:
    def test_run_resolves_the_preset_and_forwards_one_config(self):
        calls = []
        spec = runner.ExperimentSpec("fig3a", "t", _recording_entry(calls))
        sentinel_progress = lambda line: None  # noqa: E731
        sentinel_metrics = object()
        sentinel_trace = object()
        sentinel_checkpoint = object()
        config = RunConfig(
            preset="quick", progress=sentinel_progress, jobs=3,
            metrics=sentinel_metrics, trace=sentinel_trace,
            checkpoint=sentinel_checkpoint, retries=2, point_timeout=30.0,
            on_failure="record",
        )
        result = spec.run(config)
        assert result == "ran"
        [forwarded] = calls
        assert isinstance(forwarded, RunConfig)
        assert forwarded.preset is QUICK["fig3a"]
        assert forwarded.progress is sentinel_progress
        assert forwarded.jobs == 3
        assert forwarded.metrics is sentinel_metrics
        assert forwarded.trace is sentinel_trace
        assert forwarded.checkpoint is sentinel_checkpoint
        assert forwarded.retries == 2
        assert forwarded.point_timeout == 30.0
        assert forwarded.on_failure == "record"

    def test_run_accepts_legacy_keywords_with_a_warning(self):
        calls = []
        spec = runner.ExperimentSpec("fig3a", "t", _recording_entry(calls))
        with pytest.warns(DeprecationWarning, match="RunConfig"):
            spec.run(preset="quick", jobs=3)
        [forwarded] = calls
        assert forwarded.preset is QUICK["fig3a"]
        assert forwarded.jobs == 3

    def test_run_defaults_to_full(self):
        calls = []
        runner.ExperimentSpec("fig2", "t", _recording_entry(calls)).run()
        assert calls[0].preset is FULL

    def test_deprecated_shims_are_gone(self):
        # run_full/run_quick were removed once every caller migrated to
        # run(preset=...); they must not silently reappear.
        spec = runner.ExperimentSpec("fig3a", "t", _recording_entry([]))
        assert not hasattr(spec, "run_full")
        assert not hasattr(spec, "run_quick")

    def test_registry_entries_use_module_run_functions(self):
        for experiment_id, spec in runner.REGISTRY.items():
            assert spec.experiment_id == experiment_id
            assert callable(spec.entry)


class TestRunExperimentResult:
    @pytest.fixture()
    def stub_registry(self, monkeypatch):
        calls = []
        spec = runner.ExperimentSpec("stub", "a stub", _recording_entry(calls))
        monkeypatch.setattr(runner, "REGISTRY", {"stub": spec})
        return calls

    def test_quick_flag_selects_the_quick_preset(self, stub_registry):
        runner.run_experiment_result("stub", quick=True)
        assert stub_registry[0].preset.name == "quick"

    def test_explicit_preset_wins_over_quick(self, stub_registry):
        custom = Preset(name="custom", depths=(2,))
        runner.run_experiment_result(
            "stub", quick=True, config=RunConfig(preset=custom)
        )
        assert stub_registry[0].preset is custom

    def test_unknown_id_rejected(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            runner.run_experiment_result("nope")
