"""Tests for the experiment modules (reduced grids so they stay fast)."""

import pytest

#: Full end-to-end regenerations; excluded from the default fast tier
#: (see [tool.pytest.ini_options] in pyproject.toml).
pytestmark = pytest.mark.slow

from repro.core.methodology import MeasurementSettings
from repro.experiments import Preset, RunConfig, experiment_ids, run_experiment
from repro.experiments import (
    ablations,
    fig2_bandwidth,
    fig3a_flood,
    fig3b_minflood,
    fleet_flood,
    table1_http,
)

TINY = MeasurementSettings(duration=0.3, http_duration=0.6)


def tiny(**grid) -> Preset:
    """A Preset over the TINY measurement windows with the given grid."""
    return Preset(name="tiny", settings=TINY, **grid)


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        ids = experiment_ids()
        for expected in ("fig2", "fig3a", "fig3b", "table1", "ablations"):
            assert expected in ids

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")


class TestFig2:
    def test_reduced_run_shapes(self):
        result = fig2_bandwidth.run(RunConfig(preset=tiny(depths=(1, 64), vpg_counts=(1,))))
        assert set(result.series) == {"EFW", "ADF", "iptables", "ADF (VPG)"}
        efw = dict(result.series["EFW"])
        adf = dict(result.series["ADF"])
        iptables = dict(result.series["iptables"])
        # The paper's orderings at 64 rules: iptables > EFW > ADF.
        assert iptables[64] > efw[64] > adf[64]
        # And everyone is near line rate at one rule.
        assert efw[1] > 85 and adf[1] > 85

    def test_table_rendering(self):
        result = fig2_bandwidth.run(RunConfig(preset=tiny(depths=(1,), vpg_counts=(1,))))
        table = result.table()
        assert "Figure 2" in table
        assert "EFW" in table and "ADF (VPG)" in table


class TestFig3a:
    def test_reduced_run_shapes(self):
        result = fig3a_flood.run(RunConfig(preset=tiny(flood_rates=(0, 50000), repetitions=1)))
        efw = dict(result.series["EFW"])
        none = dict(result.series["No Firewall"])
        # The flood kills the EFW but not the bare NIC.
        assert efw[50000] < 2
        assert none[50000] > 10 * max(efw[50000], 0.1)

    def test_table_rendering(self):
        result = fig3a_flood.run(RunConfig(preset=tiny(flood_rates=(0,), repetitions=1)))
        assert "Figure 3a" in result.table()


class TestFig3b:
    def test_reduced_run_reports_lockup_for_efw_deny(self):
        result = fig3b_minflood.run(RunConfig(preset=tiny(depths=(64,), probe_duration=0.3)))
        efw_deny = dict(result.series["EFW (Deny)"])[64]
        assert efw_deny.lockup
        efw_allow = dict(result.series["EFW (Allow)"])[64]
        assert efw_allow.measurable
        table = result.table()
        assert "LOCKUP" in table

    def test_deny_exceeds_allow_for_adf(self):
        result = fig3b_minflood.run(RunConfig(preset=tiny(depths=(64,), probe_duration=0.3)))
        allow = dict(result.series["ADF (Allow)"])[64]
        deny = dict(result.series["ADF (Deny)"])[64]
        assert deny.rate_pps > allow.rate_pps


class TestTable1:
    def test_reduced_run_shapes(self):
        result = table1_http.run(RunConfig(preset=tiny(depths=(1, 64), vpg_counts=(1,))))
        assert result.standard_nic.fetches_per_second > 0
        by_depth = {m.rule_depth: m for m in result.adf_standard}
        assert by_depth[64].fetches_per_second < by_depth[1].fetches_per_second
        assert by_depth[64].fetches_per_second < result.standard_nic.fetches_per_second
        table = result.table()
        assert "HTTP Fetches/s" in table and "ms/connect" in table


class TestAblations:
    def test_lazy_decrypt_ablation_shows_the_effect(self):
        result = ablations.lazy_decrypt(settings=TINY, vpg_counts=(1, 8))
        lazy_8 = result.outcomes["lazy, 8 VPG(s)"]
        eager_8 = result.outcomes["eager, 8 VPG(s)"]
        # Eager decryption pays crypto per traversed VPG: markedly slower.
        assert eager_8 < lazy_8 * 0.75
        assert "Ablation" in result.table()

    def test_ring_size_ablation_runs(self):
        result = ablations.ring_size(settings=TINY, ring_sizes=(16, 256))
        assert len(result.outcomes) == 2


class TestFleet:
    def test_flooded_share_is_denied_and_the_rest_survives(self):
        result = fleet_flood.run(
            RunConfig(preset=tiny(fleet_sizes=(4,), flood_shares=(0.0, 0.5)))
        )
        by_share = {p.flood_share: p for p in result.points}
        calm, attacked = by_share[0.0], by_share[0.5]
        # Exactly the attacked half of the fleet is denied service, and
        # the fleet aggregate drops accordingly.
        assert calm.dos_fraction == 0.0
        assert attacked.dos_fraction == pytest.approx(0.5)
        assert attacked.aggregate_goodput_mbps < calm.aggregate_goodput_mbps
        assert attacked.policy_pushes_failed == 0
        assert "Fleet flood tolerance" in result.table()
