"""The paper's 10 Mbps deployment claims (§4.5 / §5).

"Even on a 10 Mbps network, the EFW/ADF can be safely used only if the
rule-set is kept to under eight rules" — because an attacker on 10 Mbps
Ethernet can generate at most ~14,880 minimum-size frames per second, a
device is safe there exactly when its minimum DoS flood rate exceeds
that.  And: "it would be very difficult to provide a useful rule-set in
under eight rules" (the Oracle policy needs 31+).
"""

import pytest

#: Full end-to-end regenerations; excluded from the default fast tier
#: (see [tool.pytest.ini_options] in pyproject.toml).
pytestmark = pytest.mark.slow

from repro.core.methodology import FloodToleranceValidator, MeasurementSettings
from repro.core.testbed import DeviceKind, Testbed
from repro.firewall.builders import allow_all
from repro.sim import units

#: Maximum 64-byte frame rate on 10 Mbps Ethernet (~14,880 pps).
TEN_MBPS_MAX_PPS = units.max_frame_rate(units.mbps(10), 64)

FAST = MeasurementSettings(duration=0.4)


class TestTenMbpsNetwork:
    def test_max_frame_rate_constant(self):
        assert TEN_MBPS_MAX_PPS == pytest.approx(14881, abs=1)

    def test_testbed_runs_at_ten_mbps(self):
        from repro.apps.iperf import IperfClient, IperfServer

        bed = Testbed(device=DeviceKind.STANDARD, bandwidth_bps=units.mbps(10))
        IperfServer(bed.target)
        session = IperfClient(bed.client).start_tcp(bed.target.ip, duration=0.5)
        bed.run(0.55)
        assert 8.5 < session.result().mbps < 10.0

    def test_shallow_rulesets_survive_ten_mbps_attackers(self):
        # The minimum DoS rate at small depths exceeds what a 10 Mbps
        # attacker can generate: safe deployment.
        validator = FloodToleranceValidator(DeviceKind.EFW, FAST)
        result = validator.minimum_flood_rate(8, flood_allowed=True, probe_duration=0.4)
        assert result.measurable
        assert result.rate_pps > TEN_MBPS_MAX_PPS

    def test_deep_rulesets_floodable_from_ten_mbps(self):
        # By 32–64 rules the bar is far below the 10 Mbps attacker's
        # reach: unsafe even on the slow network, the paper's warning.
        validator = FloodToleranceValidator(DeviceKind.EFW, FAST)
        result = validator.minimum_flood_rate(64, flood_allowed=True, probe_duration=0.4)
        assert result.measurable
        assert result.rate_pps < TEN_MBPS_MAX_PPS / 2

    def test_adf_crosses_the_threshold_earlier_than_efw(self):
        # The ADF's costlier matcher pushes it under the 10 Mbps bar at a
        # shallower depth than the EFW.
        adf = FloodToleranceValidator(DeviceKind.ADF, FAST).minimum_flood_rate(
            16, flood_allowed=True, probe_duration=0.4
        )
        efw = FloodToleranceValidator(DeviceKind.EFW, FAST).minimum_flood_rate(
            16, flood_allowed=True, probe_duration=0.4
        )
        assert adf.rate_pps < efw.rate_pps

    def test_card_is_not_the_bottleneck_under_ten_mbps_wire_rate_flood(self):
        # A line-rate flood on 10 Mbps Ethernet occupies the entire wire
        # (14,881 pps × 84 B = 10 Mbps), denying service to *any* host —
        # but the EFW's processor (one-rule capacity ~90 k pps) is loafing.
        # On the slow network the firewall is never the weaker link,
        # which is why the paper deems 10 Mbps deployments defensible.
        from repro.apps.flood import FloodGenerator, FloodKind, FloodSpec
        from repro.apps.iperf import IperfServer

        bed = Testbed(device=DeviceKind.EFW, bandwidth_bps=units.mbps(10))
        bed.install_target_policy(allow_all())
        IperfServer(bed.target)
        flood = FloodGenerator(
            bed.attacker, FloodSpec(kind=FloodKind.TCP_ACK, dst_port=5001)
        )
        flood.start(bed.target.ip, rate_pps=TEN_MBPS_MAX_PPS)
        bed.run(0.7)
        assert bed.target.nic.processor.utilisation(bed.sim.now) < 0.6
        assert bed.target.nic.ring_drops == 0
        assert not bed.target.nic.wedged


class TestLatencyUnderFlood:
    """The supplementary ping-under-flood study (methodology extra)."""

    def test_clean_lan_rtt_is_sub_millisecond(self):
        validator = FloodToleranceValidator(DeviceKind.EFW, FAST)
        clean = validator.latency_under_flood(flood_rate_pps=0, depth=8, count=20)
        assert clean.loss_ratio == 0.0
        assert clean.avg_ms < 1.0

    def test_rtt_inflates_with_load_before_loss(self):
        validator = FloodToleranceValidator(DeviceKind.EFW, FAST)
        clean = validator.latency_under_flood(flood_rate_pps=0, depth=8, count=40)
        loaded = validator.latency_under_flood(flood_rate_pps=18000, depth=8, count=40)
        assert loaded.loss_ratio < 0.2  # below the DoS point
        assert loaded.avg_ms > clean.avg_ms
        assert loaded.max_ms > 2 * clean.max_ms

    def test_saturating_flood_drops_echoes(self):
        validator = FloodToleranceValidator(DeviceKind.EFW, FAST)
        saturated = validator.latency_under_flood(
            flood_rate_pps=40000, depth=8, count=30
        )
        assert saturated.loss_ratio > 0.5

    def test_deeper_rules_raise_the_clean_rtt(self):
        validator = FloodToleranceValidator(DeviceKind.EFW, FAST)
        shallow = validator.latency_under_flood(flood_rate_pps=0, depth=1, count=20)
        deep = validator.latency_under_flood(flood_rate_pps=0, depth=64, count=20)
        assert deep.avg_ms > shallow.avg_ms
