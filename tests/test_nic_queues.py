"""Tests for the bounded single-server service queue."""

import pytest

from repro.nic.queues import ServiceQueue


def make_queue(sim, capacity=4, service=0.1):
    done = []
    queue = ServiceQueue(
        sim,
        name="q",
        capacity=capacity,
        service_time=lambda item: service,
        on_complete=lambda item: done.append((sim.now, item)),
    )
    return queue, done


class TestServiceQueue:
    def test_items_served_fifo_with_service_time(self, sim):
        queue, done = make_queue(sim)
        queue.offer("a")
        queue.offer("b")
        sim.run()
        assert done == [(pytest.approx(0.1), "a"), (pytest.approx(0.2), "b")]

    def test_capacity_bound_drops_excess(self, sim):
        queue, done = make_queue(sim, capacity=2)
        results = [queue.offer(index) for index in range(10)]
        # One in service immediately + 2 queued.
        assert results.count(True) == 3
        assert queue.dropped_full == 7
        sim.run()
        assert len(done) == 3

    def test_accepts_again_after_draining(self, sim):
        queue, done = make_queue(sim, capacity=1)
        queue.offer("a")
        queue.offer("b")
        sim.run()
        assert queue.offer("c")
        sim.run()
        assert [item for _, item in done] == ["a", "b", "c"]

    def test_per_item_service_time(self, sim):
        done = []
        queue = ServiceQueue(
            sim,
            name="q",
            capacity=8,
            service_time=lambda item: item,
            on_complete=lambda item: done.append(sim.now),
        )
        queue.offer(0.5)
        queue.offer(0.25)
        sim.run()
        assert done == [pytest.approx(0.5), pytest.approx(0.75)]

    def test_negative_service_time_rejected(self, sim):
        # Service starts synchronously when the server is idle, so the
        # bad service time surfaces at offer time.
        queue = ServiceQueue(
            sim, name="q", capacity=2, service_time=lambda i: -1, on_complete=lambda i: None
        )
        with pytest.raises(ValueError):
            queue.offer("x")

    def test_busy_time_and_utilisation(self, sim):
        queue, done = make_queue(sim, service=0.2)
        queue.offer("a")
        queue.offer("b")
        sim.run(until=1.0)
        assert queue.busy_time == pytest.approx(0.4)
        assert queue.utilisation(1.0) == pytest.approx(0.4)

    def test_utilisation_rejects_bad_elapsed(self, sim):
        queue, _ = make_queue(sim)
        with pytest.raises(ValueError):
            queue.utilisation(0)

    def test_capacity_must_be_positive(self, sim):
        with pytest.raises(ValueError):
            ServiceQueue(sim, "q", 0, lambda i: 0.1, lambda i: None)


class TestPauseResume:
    def test_pause_drops_new_offers(self, sim):
        queue, done = make_queue(sim)
        queue.pause()
        assert not queue.offer("x")
        assert queue.dropped_paused == 1
        sim.run()
        assert done == []

    def test_pause_abandons_in_service_item(self, sim):
        queue, done = make_queue(sim, service=1.0)
        queue.offer("victim")
        sim.run(until=0.5)
        queue.pause()
        sim.run()
        assert done == []  # the in-service item never completes

    def test_pause_drops_queued_items(self, sim):
        queue, done = make_queue(sim, service=1.0)
        for item in ("a", "b", "c"):
            queue.offer(item)
        queue.pause(drop_queued=True)
        assert queue.dropped_paused >= 2
        sim.run()
        assert done == []

    def test_pause_can_keep_queued_items(self, sim):
        queue, done = make_queue(sim, service=0.1)
        queue.offer("a")
        queue.offer("b")
        queue.pause(drop_queued=False)
        queue.resume()
        sim.run()
        assert [item for _, item in done] == ["b"]  # "a" was in service, lost

    def test_resume_restarts_service(self, sim):
        queue, done = make_queue(sim)
        queue.pause()
        queue.resume()
        assert queue.offer("x")
        sim.run()
        assert [item for _, item in done] == ["x"]

    def test_resume_without_pause_is_noop(self, sim):
        queue, done = make_queue(sim)
        queue.resume()
        queue.offer("x")
        sim.run()
        assert len(done) == 1

    def test_paused_property(self, sim):
        queue, _ = make_queue(sim)
        assert not queue.paused
        queue.pause()
        assert queue.paused
        queue.resume()
        assert not queue.paused
