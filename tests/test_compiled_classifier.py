"""Differential tests: compiled classifier vs. the linear reference matcher.

The compiled fast path (:mod:`repro.firewall.compiled`) must agree with
the linear first-match walk on *everything* the simulation consumes:
verdict, charged ``rules_traversed``, the identity of the matching rule,
and the VPG flag — for plaintext packets in both directions, encrypted
SPI lookups, and the default-action case.  Rule-sets and packets are
drawn from overlapping small pools so matches are common, with wildcard
protocols, symmetric rules, general port ranges and VPG pairs all in
the mix.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.firewall.compiled import compiled_enabled, set_compiled_enabled
from repro.firewall.rules import (
    Action,
    AddressPattern,
    Direction,
    PortRange,
    Rule,
    VpgRule,
)
from repro.firewall.ruleset import RuleSet
from repro.net.addresses import Ipv4Address
from repro.net.packet import (
    IcmpMessage,
    IcmpType,
    IpProtocol,
    Ipv4Packet,
    TcpSegment,
    UdpDatagram,
)

# Small overlapping pools so rules frequently match packets; a couple of
# far-away values keep the miss paths exercised too.
ADDRESS_POOL = [Ipv4Address("10.0.0.0") + offset for offset in range(6)] + [
    Ipv4Address("203.0.113.9"),
    Ipv4Address("8.8.8.8"),
]
PORT_POOL = [0, 1, 80, 443, 5001, 40000, 65535]

addresses = st.sampled_from(ADDRESS_POOL)
pool_ports = st.sampled_from(PORT_POOL)
actions = st.sampled_from([Action.ALLOW, Action.DENY])
rule_protocols = st.sampled_from([None, IpProtocol.TCP, IpProtocol.UDP, IpProtocol.ICMP])
rule_directions = st.sampled_from([Direction.INBOUND, Direction.OUTBOUND, Direction.BOTH])
packet_directions = st.sampled_from([Direction.INBOUND, Direction.OUTBOUND])
vpg_ids = st.integers(0, 3)


@st.composite
def port_ranges(draw):
    """Any / single / general range, all hit regularly."""
    kind = draw(st.sampled_from(["any", "single", "range"]))
    if kind == "any":
        return PortRange.any()
    if kind == "single":
        return PortRange.single(draw(pool_ports))
    low = draw(pool_ports)
    high = draw(st.sampled_from([p for p in PORT_POOL if p >= low]))
    return PortRange(low, high)


@st.composite
def patterns(draw):
    return AddressPattern(draw(addresses), draw(st.sampled_from([0, 8, 24, 29, 31, 32])))


@st.composite
def plain_rules(draw):
    return Rule(
        action=draw(actions),
        protocol=draw(rule_protocols),
        src=draw(patterns()),
        dst=draw(patterns()),
        src_ports=draw(port_ranges()),
        dst_ports=draw(port_ranges()),
        direction=draw(rule_directions),
        symmetric=draw(st.booleans()),
    )


@st.composite
def vpg_rules(draw):
    return VpgRule(
        action=draw(actions),
        protocol=draw(st.sampled_from([None, IpProtocol.TCP, IpProtocol.UDP])),
        src=draw(patterns()),
        dst=draw(patterns()),
        src_ports=draw(port_ranges()),
        dst_ports=draw(port_ranges()),
        vpg_id=draw(vpg_ids),
    )


rules = st.one_of(plain_rules(), vpg_rules())
rule_lists = st.lists(rules, max_size=12)


@st.composite
def packets(draw):
    protocol = draw(st.sampled_from([IpProtocol.TCP, IpProtocol.UDP, IpProtocol.ICMP]))
    if protocol == IpProtocol.TCP:
        payload = TcpSegment(src_port=draw(pool_ports), dst_port=draw(pool_ports))
    elif protocol == IpProtocol.UDP:
        payload = UdpDatagram(src_port=draw(pool_ports), dst_port=draw(pool_ports))
    else:
        payload = IcmpMessage(icmp_type=IcmpType.ECHO_REQUEST)
    return Ipv4Packet(src=draw(addresses), dst=draw(addresses), payload=payload)


def assert_same_result(compiled, linear):
    assert compiled.action == linear.action
    assert compiled.rules_traversed == linear.rules_traversed
    assert compiled.rule is linear.rule
    assert compiled.is_vpg == linear.is_vpg


class TestDifferentialEquivalence:
    @given(rule_list=rule_lists, default=actions, packet=packets(), direction=packet_directions)
    @settings(max_examples=300)
    def test_plaintext_agreement(self, rule_list, default, packet, direction):
        ruleset = RuleSet(rule_list, default_action=default)
        compiled = ruleset.compiled_classifier.lookup(packet.flow(), direction)
        linear = ruleset.evaluate_linear(packet, direction)
        assert_same_result(compiled, linear)

    @given(rule_list=rule_lists, default=actions, spi=st.integers(0, 5))
    def test_encrypted_agreement(self, rule_list, default, spi):
        ruleset = RuleSet(rule_list, default_action=default)
        compiled = ruleset.compiled_classifier.lookup_encrypted(spi)
        linear = ruleset.evaluate_encrypted_linear(spi)
        assert_same_result(compiled, linear)

    @given(rule_list=rule_lists, packet=packets(), direction=packet_directions)
    def test_both_directions_from_one_classifier(self, rule_list, packet, direction):
        # Direction tables are built lazily per direction; probing one
        # direction must not corrupt the other.
        ruleset = RuleSet(rule_list)
        classifier = ruleset.compiled_classifier
        for probe in (direction, Direction.INBOUND, Direction.OUTBOUND):
            assert_same_result(
                classifier.lookup(packet.flow(), probe),
                ruleset.evaluate_linear(packet, probe),
            )

    @given(default=actions, packet=packets(), direction=packet_directions)
    def test_empty_ruleset_charges_one_entry(self, default, packet, direction):
        ruleset = RuleSet([], default_action=default)
        compiled = ruleset.compiled_classifier.lookup(packet.flow(), direction)
        linear = ruleset.evaluate_linear(packet, direction)
        assert_same_result(compiled, linear)
        assert compiled.rules_traversed == 1
        assert compiled.rule is None


@pytest.fixture()
def restore_compiled_flag():
    original = compiled_enabled()
    yield
    set_compiled_enabled(original)


class TestEvaluateRouting:
    def test_evaluate_uses_compiled_path_and_counts_hits(self, restore_compiled_flag):
        set_compiled_enabled(True)
        ruleset = RuleSet([Rule(action=Action.ALLOW, protocol=IpProtocol.TCP)])
        packet = Ipv4Packet(
            src=ADDRESS_POOL[0],
            dst=ADDRESS_POOL[1],
            payload=TcpSegment(src_port=40000, dst_port=80),
        )
        result = ruleset.evaluate(packet, Direction.INBOUND)
        assert result.allowed
        assert ruleset.compiled_stats.compiles == 1
        assert ruleset.compiled_stats.hits == 1
        assert ruleset.compiled_stats.fallbacks == 0

    def test_disabled_flag_falls_back_to_linear(self, restore_compiled_flag):
        set_compiled_enabled(False)
        ruleset = RuleSet([Rule(action=Action.ALLOW, protocol=IpProtocol.TCP)])
        packet = Ipv4Packet(
            src=ADDRESS_POOL[0],
            dst=ADDRESS_POOL[1],
            payload=TcpSegment(src_port=40000, dst_port=80),
        )
        result = ruleset.evaluate(packet, Direction.INBOUND)
        assert result.allowed
        assert ruleset.compiled_stats.compiles == 0
        assert ruleset.compiled_stats.hits == 0
        assert ruleset.compiled_stats.fallbacks == 1

    def test_mutation_forces_recompile(self, restore_compiled_flag):
        set_compiled_enabled(True)
        ruleset = RuleSet([Rule(action=Action.ALLOW)])
        packet = Ipv4Packet(
            src=ADDRESS_POOL[0],
            dst=ADDRESS_POOL[1],
            payload=TcpSegment(src_port=40000, dst_port=80),
        )
        assert ruleset.evaluate(packet, Direction.INBOUND).allowed
        with ruleset.mutate() as edit:
            edit.insert(0, Rule(action=Action.DENY, protocol=IpProtocol.TCP))
        assert not ruleset.evaluate(packet, Direction.INBOUND).allowed
        assert ruleset.compiled_stats.compiles == 2
