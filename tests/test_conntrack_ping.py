"""Tests for connection tracking, the stateful iptables, and ping."""

import pytest

from repro.apps.ping import ping
from repro.firewall.builders import deny_all, padded_ruleset
from repro.firewall.conntrack import (
    ConnState,
    ConnectionTracker,
    StatefulIptablesFilter,
    flow_key,
)
from repro.firewall.rules import Action, PortRange, Rule
from repro.net.addresses import Ipv4Address
from repro.net.packet import (
    IcmpMessage,
    IcmpType,
    IpProtocol,
    Ipv4Packet,
    TcpFlags,
    TcpSegment,
    UdpDatagram,
)

A = Ipv4Address("10.0.0.1")
B = Ipv4Address("10.0.0.2")


def tcp(src, dst, sport, dport, flags=TcpFlags.ACK):
    return Ipv4Packet(
        src=src, dst=dst, payload=TcpSegment(src_port=sport, dst_port=dport, flags=flags)
    )


class TestFlowKey:
    def test_both_directions_share_a_key(self):
        forward = tcp(A, B, 4000, 80)
        backward = tcp(B, A, 80, 4000)
        assert flow_key(forward) == flow_key(backward)

    def test_distinct_flows_differ(self):
        assert flow_key(tcp(A, B, 4000, 80)) != flow_key(tcp(A, B, 4001, 80))

    def test_icmp_keys_on_identifier(self):
        request = Ipv4Packet(
            src=A, dst=B, payload=IcmpMessage(icmp_type=IcmpType.ECHO_REQUEST, identifier=7)
        )
        reply = Ipv4Packet(
            src=B, dst=A, payload=IcmpMessage(icmp_type=IcmpType.ECHO_REPLY, identifier=7)
        )
        assert flow_key(request) == flow_key(reply)


class TestConnectionTracker:
    def test_new_then_established(self, sim):
        tracker = ConnectionTracker(sim)
        syn = tcp(A, B, 4000, 80, TcpFlags.SYN)
        assert tracker.classify(syn) == ConnState.NEW
        tracker.note(syn, initiating=True)
        response = tcp(B, A, 80, 4000, TcpFlags.SYN | TcpFlags.ACK)
        assert tracker.classify(response) == ConnState.ESTABLISHED

    def test_non_initiating_packets_create_nothing(self, sim):
        tracker = ConnectionTracker(sim)
        tracker.note(tcp(A, B, 4000, 80), initiating=False)
        assert len(tracker) == 0

    def test_udp_flows_tracked(self, sim):
        tracker = ConnectionTracker(sim)
        datagram = Ipv4Packet(src=A, dst=B, payload=UdpDatagram(4000, 53))
        tracker.note(datagram, initiating=True)
        reply = Ipv4Packet(src=B, dst=A, payload=UdpDatagram(53, 4000))
        assert tracker.classify(reply) == ConnState.ESTABLISHED

    def test_syn_entries_expire_faster_than_established(self, sim):
        tracker = ConnectionTracker(sim)
        syn_only = tcp(A, B, 4000, 80, TcpFlags.SYN)
        tracker.note(syn_only, initiating=True)
        established = tcp(A, B, 4001, 80, TcpFlags.SYN)
        tracker.note(established, initiating=True)
        tracker.note(tcp(B, A, 80, 4001, TcpFlags.ACK), initiating=False)
        sim.run(until=30.0)  # past SYN timeout, below established timeout
        assert tracker.classify(tcp(A, B, 4000, 80)) == ConnState.NEW
        assert tracker.classify(tcp(A, B, 4001, 80)) == ConnState.ESTABLISHED

    def test_fin_accelerates_expiry(self, sim):
        tracker = ConnectionTracker(sim)
        tracker.note(tcp(A, B, 4000, 80, TcpFlags.SYN), initiating=True)
        tracker.note(tcp(B, A, 80, 4000, TcpFlags.ACK), initiating=False)
        tracker.note(tcp(A, B, 4000, 80, TcpFlags.FIN | TcpFlags.ACK), initiating=False)
        sim.run(until=5.0)
        assert tracker.classify(tcp(A, B, 4000, 80)) == ConnState.NEW

    def test_table_bound_drops_new_flows(self, sim):
        tracker = ConnectionTracker(sim, max_entries=3)
        for port in range(4000, 4005):
            tracker.note(tcp(A, B, port, 80, TcpFlags.SYN), initiating=True)
        assert len(tracker) == 3
        assert tracker.dropped_table_full == 2

    def test_sweep_reclaims_expired_entries(self, sim):
        tracker = ConnectionTracker(sim, max_entries=2)
        tracker.note(tcp(A, B, 4000, 80, TcpFlags.SYN), initiating=True)
        tracker.note(tcp(A, B, 4001, 80, TcpFlags.SYN), initiating=True)
        sim.run(until=25.0)  # both SYN entries stale
        state = tracker.note(tcp(A, B, 4002, 80, TcpFlags.SYN), initiating=True)
        assert state == ConnState.NEW
        assert tracker.expired >= 2

    def test_bad_bound_rejected(self, sim):
        with pytest.raises(ValueError):
            ConnectionTracker(sim, max_entries=0)


class TestStatefulIptables:
    def _install(self, mininet, chain, **kwargs):
        bob = mininet["bob"]
        filt = StatefulIptablesFilter(mininet.sim, input_chain=chain, **kwargs)
        bob.install_iptables(filt)
        return filt

    def test_responses_recognised_as_established(self, mininet):
        alice, bob = mininet["alice"], mininet["bob"]
        # Bob may initiate anything; inbound NEW traffic is denied.
        filt = self._install(mininet, deny_all())
        got = []
        alice.udp.bind(7000, lambda src, sport, size, data: got.append(size))

        def echo(src, sport, size, data):
            # Reply from bob; the response flow must be allowed back in.
            bob_sock.send(src, sport, size=size)

        bob_sock = bob.udp.bind(0)
        # Bob initiates: outbound commits the flow; alice's reply returns.
        reply = []
        alice_sock = alice.udp.bind(7001, lambda src, sport, size, data: alice_sock.send(src, sport, size=2))
        bob_sock2 = bob.udp.bind(7002, lambda src, sport, size, data: reply.append(size))
        bob.udp.send_from(7002, alice.ip, 7001, size=5)
        mininet.run(0.1)
        assert reply == [2]
        assert filt.accepted_established >= 1

    def test_unsolicited_inbound_denied(self, mininet):
        alice, bob = mininet["alice"], mininet["bob"]
        filt = self._install(mininet, deny_all())
        got = []
        bob.udp.bind(7000, lambda *args: got.append(args))
        alice.udp.bind(0).send(bob.ip, 7000, size=4)
        mininet.run(0.1)
        assert got == []
        assert filt.dropped_in == 1

    def test_deep_chain_costs_once_per_connection(self, mininet):
        alice, bob = mininet["alice"], mininet["bob"]
        allow = Rule(
            action=Action.ALLOW,
            protocol=IpProtocol.TCP,
            dst_ports=PortRange.single(5001),
            symmetric=True,
        )
        filt = self._install(mininet, padded_ruleset(64, action_rule=allow))
        received = []

        def on_accept(conn):
            conn.on_data = lambda c, data, size: received.append(size)

        bob.tcp.listen(5001, on_accept)
        conn = alice.tcp.connect(bob.ip, 5001)
        conn.on_connected = lambda c: c.send(500_000)
        mininet.run(1.0)
        assert sum(received) == 500_000
        # Nearly every packet took the conntrack fast path.
        assert filt.accepted_established > 0.9 * filt.accepted_in

    def test_conntrack_full_drops_new_flows(self, mininet):
        alice, bob = mininet["alice"], mininet["bob"]
        allow = Rule(action=Action.ALLOW, protocol=IpProtocol.UDP)
        filt = self._install(mininet, padded_ruleset(1, action_rule=allow), max_entries=8)
        got = []
        bob.udp.bind(7000, lambda *args: got.append(args))
        sender = alice.udp.bind(0)
        # 20 distinct spoofed flows against an 8-entry table.
        for index in range(20):
            spoofed = Ipv4Packet(
                src=Ipv4Address(f"172.16.0.{index + 1}"),
                dst=bob.ip,
                payload=UdpDatagram(1000 + index, 7000),
            )
            alice.ip_layer.send_packet(spoofed)
        mininet.run(0.2)
        assert filt.dropped_conntrack_full > 0
        assert len(got) < 20


class TestPing:
    def test_bounded_run_reports_statistics(self, mininet):
        alice, bob = mininet["alice"], mininet["bob"]
        session = ping(alice, bob.ip, count=5, interval=0.05)
        mininet.run(1.0)
        result = session.result
        assert result.sent == 5
        assert result.received == 5
        assert result.loss_ratio == 0.0
        assert 0 < result.min_ms <= result.avg_ms <= result.max_ms < 5
        assert "5 sent, 5 received" in result.summary()

    def test_loss_counted_for_silent_target(self, mininet):
        alice = mininet["alice"]
        session = ping(alice, Ipv4Address("192.168.1.99"), count=3, interval=0.05)
        mininet.run(1.0)
        assert session.result.sent == 3
        assert session.result.received == 0
        assert session.result.loss_ratio == 1.0

    def test_stop_halts_stream(self, mininet):
        alice, bob = mininet["alice"], mininet["bob"]
        session = ping(alice, bob.ip, count=1000, interval=0.05)
        mininet.run(0.2)
        session.stop()
        sent_at_stop = session.result.sent
        mininet.run(0.5)
        assert session.result.sent == sent_at_stop

    def test_latency_grows_behind_deep_efw_ruleset(self, sim):
        from tests.test_nic_models import build_pair
        from repro.nic.efw import EfwNic
        from repro.firewall.builders import padded_ruleset
        from repro.firewall.rules import Action, Rule
        from repro.net.packet import IpProtocol

        def rtt_at_depth(depth):
            local_sim = type(sim)()
            alice, bob = build_pair(local_sim, lambda: EfwNic(local_sim))
            icmp_allow = Rule(action=Action.ALLOW, protocol=IpProtocol.ICMP)
            bob.nic.install_policy(padded_ruleset(depth, action_rule=icmp_allow))
            session = ping(alice, bob.ip, count=10, interval=0.02)
            local_sim.run(until=1.0)
            return session.result.avg_ms

        assert rtt_at_depth(64) > rtt_at_depth(1)
