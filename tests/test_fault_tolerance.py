"""Fault-tolerance tests for the sweep executor (repro.core.parallel).

The contract under test: a worker crash (SIGKILL), a hung point, or a
raising point loses *zero* completed work; failed points are retried
with identical deterministic seeds and, on exhausted retries, either
abort with a :class:`SweepError` that names the point or occupy their
result slot as a :class:`PointFailure`; a checkpointed sweep resumes
after interruption and produces byte-identical serialized output to an
uninterrupted run.
"""

from __future__ import annotations

import os
import signal

import pytest

from repro.core.checkpoint import SweepCheckpoint
from repro.core.parallel import (
    PointFailure,
    SweepError,
    SweepExecutor,
    SweepPointSpec,
)
from repro.core.sweeps import Sweep
from repro.experiments.results import to_json
from repro.obs import MetricsCollector


# ----------------------------------------------------------------------
# Module-level point functions (must be picklable for the pool path).
# ----------------------------------------------------------------------


def _square(x):
    return x * x


def _square_logged(x, log_dir):
    """Square ``x`` and leave one file per execution (counts re-runs)."""
    with open(os.path.join(log_dir, f"ran_{x}_{os.getpid()}_{id(object())}"), "w"):
        pass
    return x * x


def _kill_once(x, marker):
    """SIGKILL the worker on the first attempt, succeed on the retry."""
    if not os.path.exists(marker):
        with open(marker, "w"):
            pass
        os.kill(os.getpid(), signal.SIGKILL)
    return x * x


def _hang_once(x, marker):
    """Sleep far past any test timeout on the first attempt only."""
    import time

    if not os.path.exists(marker):
        with open(marker, "w"):
            pass
        time.sleep(60)
    return x * x


def _fail_always(x):
    raise ValueError(f"bad point {x}")


def _fail_once(x, marker):
    """Raise on the first attempt for this marker, then succeed."""
    if not os.path.exists(marker):
        with open(marker, "w"):
            pass
        raise ValueError(f"transient failure at {x}")
    return x * x


def _specs(values):
    return [
        SweepPointSpec(label=f"point x={value}", fn=_square, kwargs={"x": value})
        for value in values
    ]


def _executions(log_dir):
    return len(os.listdir(log_dir))


# ----------------------------------------------------------------------
# Worker death (SIGKILL mid-point)
# ----------------------------------------------------------------------


class TestWorkerDeath:
    def test_killed_worker_is_detected_and_point_retried(self, tmp_path):
        marker = str(tmp_path / "killed")
        specs = _specs([2, 3])
        specs.append(
            SweepPointSpec(
                label="assassin",
                fn=_kill_once,
                kwargs={"x": 5, "marker": marker},
            )
        )
        executor = SweepExecutor(jobs=2, retries=1)
        assert executor.run(specs) == [4, 9, 25]
        assert executor.stats.worker_deaths == 1
        assert executor.stats.retries == 1
        assert executor.stats.failures == 0

    def test_killed_worker_without_retries_names_the_point(self, tmp_path):
        marker = str(tmp_path / "killed")
        specs = _specs([2]) + [
            SweepPointSpec(
                label="assassin",
                fn=_kill_once,
                kwargs={"x": 5, "marker": marker},
            )
        ]
        with pytest.raises(SweepError, match="assassin") as excinfo:
            SweepExecutor(jobs=2, retries=0).run(specs)
        assert excinfo.value.failure.kind == "worker-died"
        # Zero completed points are lost: the survivor is preserved.
        assert [(p.index, p.value) for p in excinfo.value.completed] == [(0, 4)]


# ----------------------------------------------------------------------
# Retries and failure recording
# ----------------------------------------------------------------------


class TestRetriesAndRecording:
    @pytest.mark.parametrize("jobs", [1, 4])
    def test_transient_failure_recovers_with_retry(self, jobs, tmp_path):
        marker = str(tmp_path / "flaky")
        specs = _specs([2]) + [
            SweepPointSpec(
                label="flaky",
                fn=_fail_once,
                kwargs={"x": 3, "marker": marker},
            )
        ]
        executor = SweepExecutor(jobs=jobs, retries=2)
        assert executor.run(specs) == [4, 9]
        assert executor.stats.retries == 1
        assert executor.stats.failures == 0

    @pytest.mark.parametrize("jobs", [1, 4])
    def test_record_mode_keeps_going_and_records_the_failure(self, jobs):
        specs = _specs([2]) + [
            SweepPointSpec(label="doomed", fn=_fail_always, kwargs={"x": 9}),
        ] + _specs([4])
        executor = SweepExecutor(jobs=jobs, retries=1, on_failure="record")
        results = executor.run(specs)
        assert results[0] == 4 and results[2] == 16
        failure = results[1]
        assert isinstance(failure, PointFailure)
        assert failure.label == "doomed"
        assert failure.index == 1
        assert failure.kind == "error"
        assert failure.attempts == 2  # first try + one retry
        assert "bad point 9" in failure.error
        assert executor.failures == [failure]
        assert executor.stats.retries == 1
        assert executor.stats.failures == 1
        # The failure renders safely in tables and numeric contexts.
        assert f"{failure:,.1f}" == "FAILED(error)"
        import math

        assert math.isnan(float(failure))

    def test_retry_reruns_with_identical_kwargs(self, tmp_path):
        # The retried attempt is the same deterministic call: same spec,
        # same kwargs (the seed travels in kwargs), so its result equals
        # what an untroubled run would have produced.
        marker = str(tmp_path / "flaky")
        spec = SweepPointSpec(
            label="flaky", fn=_fail_once, kwargs={"x": 7, "marker": marker}
        )
        executor = SweepExecutor(jobs=1, retries=1)
        assert executor.run([spec]) == [49]


# ----------------------------------------------------------------------
# Point timeouts
# ----------------------------------------------------------------------


class TestPointTimeout:
    def test_hung_point_is_killed_and_retried(self, tmp_path):
        marker = str(tmp_path / "hung")
        specs = _specs([2]) + [
            SweepPointSpec(
                label="sleeper",
                fn=_hang_once,
                kwargs={"x": 3, "marker": marker},
            )
        ]
        executor = SweepExecutor(jobs=2, retries=1, point_timeout=1.5)
        assert executor.run(specs) == [4, 9]
        assert executor.stats.timeouts == 1
        assert executor.stats.retries == 1

    def test_timeout_without_retry_records_failure(self, tmp_path):
        marker = str(tmp_path / "hung")
        specs = [
            SweepPointSpec(
                label="sleeper",
                fn=_hang_once,
                kwargs={"x": 3, "marker": marker},
            )
        ] + _specs([2])
        executor = SweepExecutor(
            jobs=2, point_timeout=1.0, on_failure="record"
        )
        results = executor.run(specs)
        assert isinstance(results[0], PointFailure)
        assert results[0].kind == "timeout"
        assert results[1] == 4
        assert executor.stats.timeouts == 1

    def test_invalid_timeout_rejected(self):
        with pytest.raises(ValueError, match="point_timeout"):
            SweepExecutor(point_timeout=0)
        with pytest.raises(ValueError, match="retries"):
            SweepExecutor(retries=-1)
        with pytest.raises(ValueError, match="on_failure"):
            SweepExecutor(on_failure="shrug")


# ----------------------------------------------------------------------
# Checkpoint / resume
# ----------------------------------------------------------------------


class TestCheckpointResume:
    def test_resume_skips_completed_points_byte_identically(self, tmp_path):
        log_a = tmp_path / "log_a"
        log_a.mkdir()
        path = str(tmp_path / "ckpt.jsonl")
        values = [2, 3, 4, 5]

        def logged_specs(log_dir):
            return [
                SweepPointSpec(
                    label=f"point x={value}",
                    fn=_square_logged,
                    kwargs={"x": value, "log_dir": str(log_dir)},
                )
                for value in values
            ]

        with SweepCheckpoint(path, resume=False) as checkpoint:
            first = SweepExecutor(jobs=1, checkpoint=checkpoint).run(
                logged_specs(log_a)
            )
        assert first == [v * v for v in values]
        assert _executions(log_a) == len(values)

        # Resuming re-runs nothing and reproduces the results exactly.
        with SweepCheckpoint(path, resume=True) as checkpoint:
            executor = SweepExecutor(jobs=4, checkpoint=checkpoint)
            resumed = executor.run(logged_specs(log_a))
        assert _executions(log_a) == len(values)  # no new executions
        assert executor.stats.resumed == len(values)
        assert to_json(resumed) == to_json(first)

        # Serial and parallel uninterrupted runs serialize identically too.
        serial = SweepExecutor(jobs=1).run(_specs(values))
        parallel = SweepExecutor(jobs=4).run(_specs(values))
        assert to_json(serial) == to_json(parallel) == to_json(
            [v * v for v in values]
        )

    def test_interrupted_sweep_resumes_to_clean_result(self, tmp_path):
        marker = str(tmp_path / "flaky")
        path = str(tmp_path / "ckpt.jsonl")
        specs = _specs([2, 3]) + [
            SweepPointSpec(
                label="flaky", fn=_fail_once, kwargs={"x": 6, "marker": marker}
            )
        ] + _specs([7])

        with SweepCheckpoint(path, resume=False) as checkpoint:
            with pytest.raises(SweepError, match="flaky"):
                SweepExecutor(jobs=1, checkpoint=checkpoint).run(specs)
        # Completed points made it to disk before the abort.
        assert len(SweepCheckpoint(path)) >= 2

        with SweepCheckpoint(path, resume=True) as checkpoint:
            executor = SweepExecutor(jobs=2, checkpoint=checkpoint)
            resumed = executor.run(specs)
        assert resumed == [4, 9, 36, 49]
        assert executor.stats.resumed >= 2
        # Byte-identical to a clean, never-interrupted run of the same
        # grid (marker now exists, so the flaky point just succeeds).
        clean = SweepExecutor(jobs=1).run(specs)
        assert to_json(resumed) == to_json(clean)

    def test_torn_final_line_is_tolerated(self, tmp_path):
        path = str(tmp_path / "ckpt.jsonl")
        with SweepCheckpoint(path, resume=False) as checkpoint:
            SweepExecutor(jobs=1, checkpoint=checkpoint).run(_specs([2, 3]))
        with open(path, "a", encoding="utf-8") as stream:
            stream.write('{"schema_version": 1, "key": "abc", "resu')  # torn
        with SweepCheckpoint(path, resume=True) as checkpoint:
            executor = SweepExecutor(jobs=1, checkpoint=checkpoint)
            assert executor.run(_specs([2, 3])) == [4, 9]
        assert executor.stats.resumed == 2

    def test_checkpoint_path_string_is_accepted(self, tmp_path):
        path = str(tmp_path / "ckpt.jsonl")
        assert SweepExecutor(jobs=1, checkpoint=path).run(_specs([3])) == [9]
        executor = SweepExecutor(jobs=1, checkpoint=path)
        assert executor.run(_specs([3])) == [9]
        assert executor.stats.resumed == 1

    def test_changed_config_ignores_stale_records(self, tmp_path):
        path = str(tmp_path / "ckpt.jsonl")
        with SweepCheckpoint(path, resume=False) as checkpoint:
            SweepExecutor(jobs=1, checkpoint=checkpoint).run(_specs([2]))
        # Same label, different kwargs -> different key -> re-run.
        other = [SweepPointSpec(label="point x=2", fn=_square, kwargs={"x": 4})]
        with SweepCheckpoint(path, resume=True) as checkpoint:
            executor = SweepExecutor(jobs=1, checkpoint=checkpoint)
            assert executor.run(other) == [16]
        assert executor.stats.resumed == 0


# ----------------------------------------------------------------------
# Unpicklable specs inside an otherwise-poolable grid
# ----------------------------------------------------------------------


class TestUnpicklableMidGrid:
    def test_unpicklable_spec_fails_cleanly_without_hanging(self):
        specs = _specs([2]) + [
            SweepPointSpec(label="closure", fn=lambda: 1, kwargs={})
        ] + _specs([3])
        executor = SweepExecutor(jobs=2, on_failure="record")
        results = executor.run(specs)
        assert results[0] == 4 and results[2] == 9
        assert isinstance(results[1], PointFailure)
        assert results[1].kind == "unpicklable"


# ----------------------------------------------------------------------
# Sweep wrapper regressions (satellite fixes)
# ----------------------------------------------------------------------


class TestSweepWrapper:
    def test_rerun_replaces_points_instead_of_appending(self):
        sweep = Sweep(_square, jobs=1)
        first = sweep.run({"x": [1, 2, 3]})
        assert len(first) == 3
        second = sweep.run({"x": [4, 5]})
        assert len(second) == 2  # not 5: old points are discarded
        assert [point.result for point in second] == [16, 25]
        assert sweep.points is second or sweep.points == second

    def test_metrics_collector_is_forwarded(self):
        collector = MetricsCollector(interval=0.5)
        sweep = Sweep(_square, jobs=1, metrics=collector)
        sweep.run({"x": [1, 2]})
        assert len(collector) == 2  # one deposit per point, spec order

    def test_fault_keywords_are_forwarded(self, tmp_path):
        marker = str(tmp_path / "flaky")
        sweep = Sweep(_fail_once, jobs=1, retries=1)
        points = sweep.run({"x": [3], "marker": [marker]})
        assert [point.result for point in points] == [9]


# ----------------------------------------------------------------------
# Executor counters surface in the metrics registry
# ----------------------------------------------------------------------


class TestExecutorCounters:
    def test_counters_mirrored_into_collector(self, tmp_path):
        marker = str(tmp_path / "flaky")
        collector = MetricsCollector(interval=0.5)
        specs = _specs([2]) + [
            SweepPointSpec(
                label="flaky", fn=_fail_once, kwargs={"x": 3, "marker": marker}
            )
        ]
        executor = SweepExecutor(jobs=1, metrics=collector, retries=1)
        executor.run(specs)
        counters = collector.executor_registry.read_all()
        assert counters["sweep_point_retries"] == 1
        assert counters["sweep_point_failures"] == 0
        assert counters["sweep_point_timeouts"] == 0
        assert counters["sweep_worker_deaths"] == 0
        assert counters["sweep_points_resumed"] == 0

    def test_failure_deposits_incident_in_trace(self):
        from repro.obs.tracing import TraceCollector, TraceConfig

        tracer = TraceCollector(TraceConfig(spans=False, flight=False))
        specs = _specs([2]) + [
            SweepPointSpec(label="doomed", fn=_fail_always, kwargs={"x": 9}),
        ]
        executor = SweepExecutor(
            jobs=1, trace=tracer, on_failure="record"
        )
        executor.run(specs)
        incidents = tracer.incidents()
        assert any(inc.kind == "sweep-point-failure" for inc in incidents)
        assert any("doomed" in (inc.source or "") for inc in incidents)
