"""Determinism and reproducibility guarantees.

Every experiment in the repository relies on the simulation being a pure
function of its seed: same seed -> identical event sequence, byte counts
and measurements.  These tests pin that property across the subsystems
most likely to break it (dict ordering, RNG coupling, floating-point
accumulation order).
"""

import pytest

from repro.apps.flood import FloodGenerator, FloodKind, FloodSpec
from repro.apps.http_load import HttpLoadClient
from repro.apps.httpd import HttpServer
from repro.apps.iperf import IperfClient, IperfServer
from repro.core.methodology import FloodToleranceValidator, MeasurementSettings
from repro.core.testbed import DeviceKind, Testbed
from repro.firewall.builders import allow_all


def _flooded_iperf_run(seed: int):
    bed = Testbed(device=DeviceKind.EFW, seed=seed)
    bed.install_target_policy(allow_all())
    IperfServer(bed.target)
    flood = FloodGenerator(
        bed.attacker, FloodSpec(kind=FloodKind.TCP_SYN, dst_port=9999, randomize_src=True)
    )
    flood.start(bed.target.ip, rate_pps=20000)
    bed.run(0.1)
    session = IperfClient(bed.client).start_tcp(bed.target.ip, duration=0.4)
    bed.run(0.45)
    return (
        session.result().bytes_transferred,
        bed.sim.events_executed,
        bed.target.nic.rx_allowed,
        bed.target.nic.rx_denied,
        bed.target.nic.ring_drops,
        flood.packets_sent,
    )


class TestDeterminism:
    def test_identical_seeds_identical_runs(self):
        assert _flooded_iperf_run(42) == _flooded_iperf_run(42)

    def test_different_seeds_vary_random_draws(self):
        # Aggregate timings may coincide across seeds (ISNs and spoofed
        # addresses do not change event timing), but the random draws
        # themselves must differ.
        def draws(seed):
            bed = Testbed(device=DeviceKind.EFW, seed=seed)
            isn = bed.client.tcp.next_isn()
            flood = FloodGenerator(
                bed.attacker, FloodSpec(kind=FloodKind.UDP, randomize_src=True)
            )
            source = flood._source_address()
            return (isn, source)

        assert draws(1) != draws(2)

    def test_http_run_deterministic(self):
        def run(seed):
            bed = Testbed(device=DeviceKind.ADF, seed=seed)
            bed.install_target_policy(allow_all())
            HttpServer(bed.target, port=80)
            session = HttpLoadClient(bed.client).start(bed.target.ip, duration=0.5)
            bed.run(0.6)
            result = session.result()
            return (result.completed, result.mean_connect_ms, bed.sim.events_executed)

        assert run(7) == run(7)

    def test_validator_measurement_deterministic(self):
        settings = MeasurementSettings(duration=0.3, seed=123)

        def measure():
            validator = FloodToleranceValidator(DeviceKind.EFW, settings)
            return validator.available_bandwidth(depth=32).mbps

        assert measure() == pytest.approx(measure(), abs=0.0)

    def test_vpg_crypto_deterministic(self):
        settings = MeasurementSettings(duration=0.3, seed=5)

        def measure():
            validator = FloodToleranceValidator(DeviceKind.ADF, settings)
            return validator.available_bandwidth(vpg_count=2).mbps

        assert measure() == pytest.approx(measure(), abs=0.0)
