"""Tests for one-shot and periodic timers."""

import pytest

from repro.sim.timer import PeriodicTimer, Timer


class TestTimer:
    def test_fires_after_interval(self, sim):
        fired = []
        timer = Timer(sim, fired.append, "x")
        timer.start(2.0)
        sim.run()
        assert fired == ["x"]
        assert sim.now == 2.0

    def test_stop_prevents_firing(self, sim):
        fired = []
        timer = Timer(sim, fired.append, "x")
        timer.start(2.0)
        timer.stop()
        sim.run()
        assert fired == []

    def test_restart_resets_deadline(self, sim):
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(2.0)
        sim.run(until=1.0)
        timer.restart(2.0)
        sim.run()
        assert fired == [3.0]

    def test_double_start_rejected(self, sim):
        timer = Timer(sim, lambda: None)
        timer.start(1.0)
        with pytest.raises(RuntimeError):
            timer.start(1.0)

    def test_running_property(self, sim):
        timer = Timer(sim, lambda: None)
        assert not timer.running
        timer.start(1.0)
        assert timer.running
        sim.run()
        assert not timer.running

    def test_restartable_after_firing(self, sim):
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(1.0)
        sim.run()
        timer.start(1.0)
        sim.run()
        assert fired == [1.0, 2.0]

    def test_stop_is_idempotent(self, sim):
        timer = Timer(sim, lambda: None)
        timer.stop()
        timer.stop()
        assert not timer.running


class TestPeriodicTimer:
    def test_fires_repeatedly(self, sim):
        fired = []
        timer = PeriodicTimer(sim, 1.0, lambda: fired.append(sim.now))
        timer.start()
        sim.run(until=3.5)
        assert fired == [1.0, 2.0, 3.0]
        assert timer.fired == 3

    def test_initial_delay_overrides_first_interval(self, sim):
        fired = []
        timer = PeriodicTimer(sim, 1.0, lambda: fired.append(sim.now))
        timer.start(initial_delay=0.25)
        sim.run(until=2.5)
        assert fired == [0.25, 1.25, 2.25]

    def test_stop_halts_series(self, sim):
        fired = []
        timer = PeriodicTimer(sim, 1.0, lambda: fired.append(sim.now))
        timer.start()
        sim.schedule(2.5, timer.stop)
        sim.run(until=10.0)
        assert fired == [1.0, 2.0]

    def test_callback_may_stop_itself(self, sim):
        fired = []

        def tick():
            fired.append(sim.now)
            if len(fired) == 2:
                timer.stop()

        timer = PeriodicTimer(sim, 1.0, tick)
        timer.start()
        sim.run(until=10.0)
        assert fired == [1.0, 2.0]

    def test_interval_change_takes_effect_after_next_firing(self, sim):
        # Re-arming happens before the callback runs, so a change made in
        # the callback applies from the firing after next.
        fired = []

        def tick():
            fired.append(sim.now)
            timer.interval = 2.0

        timer = PeriodicTimer(sim, 1.0, tick)
        timer.start()
        sim.run(until=5.5)
        assert fired == [1.0, 2.0, 4.0]

    def test_nonpositive_interval_rejected(self, sim):
        with pytest.raises(ValueError):
            PeriodicTimer(sim, 0.0, lambda: None)

    def test_double_start_rejected(self, sim):
        timer = PeriodicTimer(sim, 1.0, lambda: None)
        timer.start()
        with pytest.raises(RuntimeError):
            timer.start()
