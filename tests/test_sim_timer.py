"""Tests for one-shot and periodic timers."""

import pytest

from repro.sim.timer import PeriodicTimer, Timer, TimerWheel


class TestTimer:
    def test_fires_after_interval(self, sim):
        fired = []
        timer = Timer(sim, fired.append, "x")
        timer.start(2.0)
        sim.run()
        assert fired == ["x"]
        assert sim.now == 2.0

    def test_stop_prevents_firing(self, sim):
        fired = []
        timer = Timer(sim, fired.append, "x")
        timer.start(2.0)
        timer.stop()
        sim.run()
        assert fired == []

    def test_restart_resets_deadline(self, sim):
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(2.0)
        sim.run(until=1.0)
        timer.restart(2.0)
        sim.run()
        assert fired == [3.0]

    def test_double_start_rejected(self, sim):
        timer = Timer(sim, lambda: None)
        timer.start(1.0)
        with pytest.raises(RuntimeError):
            timer.start(1.0)

    def test_running_property(self, sim):
        timer = Timer(sim, lambda: None)
        assert not timer.running
        timer.start(1.0)
        assert timer.running
        sim.run()
        assert not timer.running

    def test_restartable_after_firing(self, sim):
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.start(1.0)
        sim.run()
        timer.start(1.0)
        sim.run()
        assert fired == [1.0, 2.0]

    def test_stop_is_idempotent(self, sim):
        timer = Timer(sim, lambda: None)
        timer.stop()
        timer.stop()
        assert not timer.running


class TestPeriodicTimer:
    def test_fires_repeatedly(self, sim):
        fired = []
        timer = PeriodicTimer(sim, 1.0, lambda: fired.append(sim.now))
        timer.start()
        sim.run(until=3.5)
        assert fired == [1.0, 2.0, 3.0]
        assert timer.fired == 3

    def test_initial_delay_overrides_first_interval(self, sim):
        fired = []
        timer = PeriodicTimer(sim, 1.0, lambda: fired.append(sim.now))
        timer.start(initial_delay=0.25)
        sim.run(until=2.5)
        assert fired == [0.25, 1.25, 2.25]

    def test_stop_halts_series(self, sim):
        fired = []
        timer = PeriodicTimer(sim, 1.0, lambda: fired.append(sim.now))
        timer.start()
        sim.schedule(2.5, timer.stop)
        sim.run(until=10.0)
        assert fired == [1.0, 2.0]

    def test_callback_may_stop_itself(self, sim):
        fired = []

        def tick():
            fired.append(sim.now)
            if len(fired) == 2:
                timer.stop()

        timer = PeriodicTimer(sim, 1.0, tick)
        timer.start()
        sim.run(until=10.0)
        assert fired == [1.0, 2.0]

    def test_interval_change_takes_effect_after_next_firing(self, sim):
        # Re-arming happens before the callback runs, so a change made in
        # the callback applies from the firing after next.
        fired = []

        def tick():
            fired.append(sim.now)
            timer.interval = 2.0

        timer = PeriodicTimer(sim, 1.0, tick)
        timer.start()
        sim.run(until=5.5)
        assert fired == [1.0, 2.0, 4.0]

    def test_nonpositive_interval_rejected(self, sim):
        with pytest.raises(ValueError):
            PeriodicTimer(sim, 0.0, lambda: None)

    def test_double_start_rejected(self, sim):
        timer = PeriodicTimer(sim, 1.0, lambda: None)
        timer.start()
        with pytest.raises(RuntimeError):
            timer.start()


class TestTimerWheel:
    def test_periodic_timers_share_one_kernel_event_per_tick(self, sim):
        # The whole point of the wheel: however many timers are due at a
        # tick, the kernel dispatches exactly one event for it.
        wheel = TimerWheel(sim, tick=0.001)
        counts = [0, 0, 0]

        def bump(i):
            counts[i] += 1

        for i in range(3):
            wheel.schedule_periodic(0.001, bump, i)
        sim.run(until=0.0105)
        assert counts == [10, 10, 10]
        assert sim.events_executed == wheel.ticks_executed == 10

    def test_intervals_quantize_up_to_whole_ticks(self, sim):
        wheel = TimerWheel(sim, tick=0.001)
        fired = []
        wheel.schedule(0.0014, lambda: fired.append(sim.now))
        wheel.schedule(0.0001, lambda: fired.append(sim.now))
        sim.run()
        # 0.0014 -> 2 ticks, 0.0001 -> minimum 1 tick.
        assert fired == [pytest.approx(0.001), pytest.approx(0.002)]

    def test_cancel_is_lazy_but_suppresses_the_callback(self, sim):
        wheel = TimerWheel(sim, tick=0.001)
        fired = []
        keep = wheel.schedule_periodic(0.001, lambda: fired.append("keep"))
        drop = wheel.schedule_periodic(0.001, lambda: fired.append("drop"))
        sim.run(until=0.0025)
        drop.cancel()
        sim.run(until=0.0055)
        assert fired.count("drop") == 2
        assert fired.count("keep") == 5
        assert wheel.live_timers == 1 or wheel.live_timers == 2  # pre/post reap

    def test_wheel_goes_idle_when_drained(self, sim):
        wheel = TimerWheel(sim, tick=0.001)
        timer = wheel.schedule_periodic(0.001, lambda: None)
        sim.run(until=0.003)
        timer.cancel()
        sim.run(until=0.010)
        executed_when_idle = sim.events_executed
        sim.run(until=0.050)
        # No timers -> no tick events keep firing.
        assert sim.events_executed == executed_when_idle

    def test_rearming_after_idle_does_not_fire_in_the_past(self, sim):
        wheel = TimerWheel(sim, tick=0.001)
        wheel.schedule(0.001, lambda: None)
        sim.run(until=0.010)
        fired = []
        wheel.schedule(0.001, lambda: fired.append(sim.now))
        sim.run(until=0.020)
        assert fired == [pytest.approx(0.011)]

    def test_callback_scheduling_into_the_wheel_lands_on_a_later_tick(self, sim):
        wheel = TimerWheel(sim, tick=0.001)
        fired = []

        def first():
            fired.append(("first", sim.now))
            wheel.schedule(0.001, lambda: fired.append(("second", sim.now)))

        wheel.schedule(0.001, first)
        sim.run()
        assert fired[0] == ("first", pytest.approx(0.001))
        assert fired[1] == ("second", pytest.approx(0.002))

    def test_nonpositive_tick_rejected(self, sim):
        with pytest.raises(ValueError):
            TimerWheel(sim, tick=0.0)
