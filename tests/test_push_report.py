"""Tests for the typed policy-push accounting (repro.policy.push)."""

import warnings

import pytest

from repro.core.testbed import DeviceKind, Testbed
from repro.firewall.builders import allow_all, deny_all
from repro.policy.push import ACKED, FAILED, PENDING, HostPushOutcome, PushReport


def outcome(host="target", status=ACKED, sent_at=1.0, acked_at=1.25, attempts=1):
    result = HostPushOutcome(
        host=host, policy="p", transport="udp", sent_at=sent_at, attempts=attempts
    )
    result.status = status
    if status == ACKED:
        result.acked_at = acked_at
    elif status == FAILED:
        result.failed_at = acked_at
    return result


class TestHostPushOutcome:
    def test_latency_measured_send_to_ack(self):
        assert outcome(sent_at=2.0, acked_at=2.5).latency == pytest.approx(0.5)

    def test_latency_none_until_acked(self):
        assert outcome(status=PENDING).latency is None
        assert outcome(status=FAILED).latency is None

    def test_status_flags(self):
        assert outcome(status=ACKED).acked
        assert outcome(status=FAILED).failed
        pending = outcome(status=PENDING)
        assert not pending.acked and not pending.failed


class TestPushReport:
    def build(self):
        report = PushReport()
        report.add(outcome("a", ACKED, sent_at=0.0, acked_at=0.1))
        report.add(outcome("b", ACKED, sent_at=0.0, acked_at=0.4, attempts=3))
        report.add(outcome("c", FAILED, attempts=2))
        report.add(outcome("d", PENDING))
        return report

    def test_aggregates(self):
        report = self.build()
        assert report.hosts == ["a", "b", "c", "d"]
        assert report.acked == 2
        assert report.failed == 1
        assert report.pending == 1
        assert report.retried == 3  # (3-1) + (2-1)
        assert not report.all_acked
        assert report.failed_hosts() == ["c"]
        assert report.max_latency == pytest.approx(0.4)

    def test_all_acked_and_empty_latency(self):
        report = PushReport()
        assert not report.all_acked  # an empty round confirmed nothing
        assert report.max_latency is None
        report.add(outcome("a"))
        assert report.all_acked

    def test_outcome_lookup(self):
        report = self.build()
        assert report.outcome_for("b").attempts == 3
        with pytest.raises(KeyError):
            report.outcome_for("nope")

    def test_mapping_view_is_deprecated_but_compatible(self):
        # One deprecation cycle: dict-style consumers keep working and
        # get told, once per report, to move to the typed accessors.
        report = self.build()
        with pytest.warns(DeprecationWarning, match="PushReport"):
            assert report["a"].acked
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            # Second dict-style access on the same report stays quiet.
            assert report.get("c").failed
            assert set(report.keys()) == {"a", "b", "c", "d"}
            assert sorted(host for host, _ in report.items())[0] == "a"
            # len/contains are shared with the typed API: never warn.
            assert len(report) == 4
            assert "a" in report


class TestServerIntegration:
    def test_inline_push_returns_acked_outcome(self):
        bed = Testbed(device=DeviceKind.EFW)
        server = bed.policy_server
        server.define_policy("allow", allow_all())
        server.assign("target", "allow")
        result = server.push_policy("target", inline=True)
        assert isinstance(result, HostPushOutcome)
        assert result.acked and result.attempts == 1
        assert result.latency == pytest.approx(0.0)
        assert server.push_outcome("target") is result

    def test_networked_push_ack_closes_the_outcome(self):
        bed = Testbed(device=DeviceKind.EFW)
        server = bed.policy_server
        server.define_policy("deny", deny_all())
        server.assign("target", "deny")
        result = server.push_policy("target", inline=False)
        assert result.status == PENDING
        bed.run(0.5)
        assert result.acked
        assert result.latency > 0.0

    def test_push_all_builds_a_report(self):
        bed = Testbed(device=DeviceKind.ADF, client_device=DeviceKind.ADF)
        server = bed.policy_server
        server.define_policy("allow", allow_all())
        server.assign("target", "allow")
        server.assign("client", "allow")
        report = server.push_all(inline=True)
        assert isinstance(report, PushReport)
        assert sorted(report.hosts) == ["client", "target"]
        assert report.all_acked
