"""Tests for RNG registry, tracer, processes and unit helpers."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.sim import units
from repro.sim.process import Process, Waiter
from repro.sim.rng import RngRegistry
from repro.obs.tracing import PacketTracer as Tracer


class TestRngRegistry:
    def test_same_name_returns_same_stream(self):
        registry = RngRegistry(seed=7)
        assert registry.stream("a") is registry.stream("a")

    def test_streams_are_deterministic_across_registries(self):
        first = RngRegistry(seed=7).stream("flood").random()
        second = RngRegistry(seed=7).stream("flood").random()
        assert first == second

    def test_different_names_are_independent(self):
        registry = RngRegistry(seed=7)
        a = [registry.stream("a").random() for _ in range(5)]
        b = [registry.stream("b").random() for _ in range(5)]
        assert a != b

    def test_different_seeds_differ(self):
        assert RngRegistry(1).stream("x").random() != RngRegistry(2).stream("x").random()

    def test_drawing_from_one_stream_does_not_disturb_another(self):
        reference = RngRegistry(seed=9)
        expected = [reference.stream("b").random() for _ in range(3)]
        registry = RngRegistry(seed=9)
        registry.stream("a").random()  # interleaved draw on another stream
        observed = [registry.stream("b").random() for _ in range(3)]
        assert observed == expected

    def test_names_sorted(self):
        registry = RngRegistry()
        registry.stream("zeta")
        registry.stream("alpha")
        assert registry.names() == ["alpha", "zeta"]


class TestTracer:
    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        tracer.emit(1.0, "src", "event")
        assert len(tracer) == 0

    def test_records_and_filters(self):
        tracer = Tracer(enabled=True)
        tracer.emit(1.0, "nic", "drop", reason="full")
        tracer.emit(2.0, "tcp", "retransmit")
        assert len(tracer.records(source="nic")) == 1
        assert len(tracer.records(event="retransmit")) == 1
        assert tracer.records(source="nic")[0].fields["reason"] == "full"

    def test_ring_bound(self):
        tracer = Tracer(enabled=True, max_records=3)
        for index in range(10):
            tracer.emit(float(index), "s", "e")
        assert len(tracer) == 3
        assert tracer.records()[0].time == 7.0

    def test_sink_receives_records(self):
        tracer = Tracer(enabled=True)
        seen = []
        tracer.add_sink(seen.append)
        tracer.emit(1.0, "s", "e")
        assert len(seen) == 1

    def test_clear(self):
        tracer = Tracer(enabled=True)
        tracer.emit(1.0, "s", "e")
        tracer.clear()
        assert len(tracer) == 0

    def test_str_rendering(self):
        tracer = Tracer(enabled=True)
        tracer.emit(1.5, "nic", "drop", count=3)
        assert "nic drop count=3" in str(tracer.records()[0])


class TestProcess:
    def test_yield_delays_advance_time(self, sim):
        marks = []

        def logic():
            marks.append(sim.now)
            yield 1.0
            marks.append(sim.now)
            yield 2.5
            marks.append(sim.now)

        Process.spawn(sim, logic())
        sim.run()
        assert marks == [0.0, 1.0, 3.5]

    def test_waiter_blocks_until_woken(self, sim):
        waiter = Waiter()
        results = []

        def logic():
            value = yield waiter
            results.append((sim.now, value))

        Process.spawn(sim, logic())
        sim.schedule(4.0, waiter.wake, "payload")
        sim.run()
        assert results == [(4.0, "payload")]

    def test_already_completed_waiter_resumes_immediately(self, sim):
        waiter = Waiter()
        waiter.wake("early")
        results = []

        def logic():
            value = yield waiter
            results.append(value)

        Process.spawn(sim, logic())
        sim.run()
        assert results == ["early"]

    def test_stop_terminates_process(self, sim):
        marks = []

        def logic():
            while True:
                marks.append(sim.now)
                yield 1.0

        process = Process.spawn(sim, logic())
        sim.schedule(2.5, process.stop)
        sim.run(until=10.0)
        assert marks == [0.0, 1.0, 2.0]
        assert process.finished

    def test_negative_yield_rejected(self, sim):
        def logic():
            yield -1.0

        Process.spawn(sim, logic())
        with pytest.raises(ValueError):
            sim.run()

    def test_finishes_when_generator_returns(self, sim):
        def logic():
            yield 1.0

        process = Process.spawn(sim, logic())
        sim.run()
        assert process.finished

    def test_wake_is_idempotent(self, sim):
        waiter = Waiter()
        results = []

        def logic():
            results.append((yield waiter))

        Process.spawn(sim, logic())
        sim.schedule(1.0, waiter.wake, "first")
        sim.schedule(2.0, waiter.wake, "second")
        sim.run()
        assert results == ["first"]


class TestUnits:
    def test_time_conversions(self):
        assert units.milliseconds(5) == pytest.approx(0.005)
        assert units.microseconds(5) == pytest.approx(5e-6)
        assert units.nanoseconds(5) == pytest.approx(5e-9)
        assert units.to_milliseconds(0.25) == pytest.approx(250)
        assert units.to_microseconds(1e-3) == pytest.approx(1000)

    def test_bandwidth_conversions(self):
        assert units.mbps(100) == pytest.approx(100e6)
        assert units.kbps(100) == pytest.approx(1e5)
        assert units.gbps(1) == pytest.approx(1e9)
        assert units.to_mbps(5e7) == pytest.approx(50)

    def test_transmission_delay(self):
        # 1518 bytes on 100 Mbps: 121.44 us.
        delay = units.transmission_delay(1518, units.mbps(100))
        assert math.isclose(delay, 1518 * 8 / 100e6)

    def test_transmission_delay_rejects_bad_bandwidth(self):
        with pytest.raises(ValueError):
            units.transmission_delay(100, 0)

    def test_canonical_frame_rates(self):
        # RFC 2544 numbers for 100 Mbps Ethernet.
        assert round(units.MAX_FRAME_RATE_64B) == 148810
        assert round(units.MAX_FRAME_RATE_1518B) == 8127

    def test_max_frame_rate_rejects_runt_frames(self):
        with pytest.raises(ValueError):
            units.max_frame_rate(units.mbps(100), 32)

    @given(st.integers(min_value=64, max_value=9000))
    def test_frame_rate_decreases_with_size(self, size):
        faster = units.max_frame_rate(units.mbps(100), size)
        slower = units.max_frame_rate(units.mbps(100), size + 1)
        assert slower < faster

    @given(
        st.integers(min_value=1, max_value=100_000),
        st.floats(min_value=1e3, max_value=1e10),
    )
    def test_transmission_delay_scales_linearly(self, nbytes, bandwidth):
        single = units.transmission_delay(nbytes, bandwidth)
        double = units.transmission_delay(2 * nbytes, bandwidth)
        assert math.isclose(double, 2 * single, rel_tol=1e-9)
