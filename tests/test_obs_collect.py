"""Tests for per-sweep-point metrics collection and executor merging."""

import pytest

from repro.core.parallel import SweepExecutor, SweepPointSpec
from repro.experiments.results import serialize
from repro.obs import collect
from repro.obs.collect import MetricsCollector
from repro.obs.export import CSV_COLUMNS, flatten_rows, write_metrics_csv
from repro.obs.registry import NULL_REGISTRY, MetricsRegistry
from repro.sim.engine import Simulator


@pytest.fixture(autouse=True)
def _clean_collection_state():
    """Never leak an active collection between tests."""
    yield
    if collect.collection_active():
        collect.deactivate()


class TestActivation:
    def test_inactive_by_default(self):
        assert not collect.collection_active()
        assert collect.attach_simulator(Simulator()) is None
        assert collect.deactivate() == []

    def test_activate_attach_deactivate_cycle(self):
        collect.activate(interval=0.05)
        assert collect.collection_active()
        sim = Simulator()
        registry, sampler = collect.attach_simulator(sim)
        assert sim.metrics is registry
        assert isinstance(registry, MetricsRegistry)
        # The kernel's own instruments are registered on attach.
        assert registry.get("sim_events_executed", component="engine") is not None
        sim.run(until=0.2)
        snapshots = collect.deactivate()
        assert not collect.collection_active()
        assert len(snapshots) == 1
        assert snapshots[0].interval == 0.05
        assert snapshots[0].find("sim_events_executed", component="engine") is not None

    def test_double_activate_rejected(self):
        collect.activate()
        with pytest.raises(RuntimeError):
            collect.activate()

    def test_simulator_stays_null_when_inactive(self):
        sim = Simulator()
        assert sim.metrics is NULL_REGISTRY

    def test_collector_interval_validated(self):
        with pytest.raises(ValueError):
            MetricsCollector(interval=0)


def _metric_point(count: int) -> float:
    """A sweep point that self-instruments (picklable for the pool path)."""
    sim = Simulator()
    attached = collect.attach_simulator(sim)
    assert attached is not None, "executor should activate collection"
    registry, _sampler = attached
    counter = registry.counter("test_events", source="point")
    for step in range(count):
        sim.schedule(0.01 * (step + 1), counter.inc)
    sim.run(until=0.01 * count + 0.005)
    return counter.read()


def _specs():
    return [
        SweepPointSpec(label=f"point count={count}", fn=_metric_point, kwargs={"count": count})
        for count in (3, 5, 2, 4)
    ]


class TestExecutorMerging:
    def test_serial_executor_deposits_points_in_spec_order(self):
        collector = MetricsCollector(interval=0.01)
        values = SweepExecutor(jobs=1, metrics=collector).run(_specs())
        assert values == [3.0, 5.0, 2.0, 4.0]
        assert [point.label for point in collector.points] == [
            "point count=3",
            "point count=5",
            "point count=2",
            "point count=4",
        ]
        series = collector.points[1].snapshots[0].find("test_events", source="point")
        assert series.final == 5.0

    def test_jobs_1_and_jobs_n_merge_identically(self):
        serial = MetricsCollector(interval=0.01)
        SweepExecutor(jobs=1, metrics=serial).run(_specs())
        parallel = MetricsCollector(interval=0.01)
        SweepExecutor(jobs=2, metrics=parallel).run(_specs())
        assert serialize(serial.experiment("x")) == serialize(parallel.experiment("x"))

    def test_collection_is_inactive_again_after_a_metrics_run(self):
        SweepExecutor(jobs=1, metrics=MetricsCollector()).run(_specs()[:1])
        assert not collect.collection_active()

    def test_runs_without_collector_leave_metrics_off(self):
        values = SweepExecutor(jobs=1).run(
            [SweepPointSpec(label="plain", fn=_plain_point, kwargs={})]
        )
        assert values == [True]


def _plain_point() -> bool:
    """Without a collector the point's simulators stay on the null registry."""
    sim = Simulator()
    return sim.metrics is NULL_REGISTRY and collect.attach_simulator(sim) is None


class TestCsvExport:
    def test_flatten_and_write(self, tmp_path):
        collector = MetricsCollector(interval=0.01)
        SweepExecutor(jobs=1, metrics=collector).run(_specs()[:2])
        experiment = collector.experiment("unit")
        rows = list(flatten_rows(experiment))
        assert rows, "expected at least one sample row"
        assert all(len(row) == len(CSV_COLUMNS) for row in rows)
        path = write_metrics_csv(experiment, tmp_path / "series.csv")
        lines = path.read_text().strip().splitlines()
        assert lines[0] == ",".join(CSV_COLUMNS)
        assert len(lines) == len(rows) + 1
        assert lines[1].startswith("point count=3,0,")
