"""Shared fixtures: a simulation kernel and a minimal two-host network."""

from __future__ import annotations

import pytest

from repro.host.host import Host
from repro.net.addresses import Ipv4Address, MacAddress
from repro.net.topology import StarTopology
from repro.nic.standard import StandardNic
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry


@pytest.fixture
def sim():
    """A fresh simulation kernel."""
    return Simulator()


@pytest.fixture
def rng():
    """A deterministic RNG registry."""
    return RngRegistry(seed=1234)


@pytest.fixture
def linear_matcher():
    """Force rule-sets onto the linear reference matcher for one test.

    Useful where object identity must distinguish a cached result from a
    recomputed one — the compiled fast path returns shared per-rule
    MatchResult objects, so identity holds there regardless of caching.
    """
    from repro.firewall.compiled import compiled_enabled, set_compiled_enabled

    original = compiled_enabled()
    set_compiled_enabled(False)
    yield
    set_compiled_enabled(original)


class MiniNet:
    """Two (or more) hosts with standard NICs on one switch."""

    def __init__(self, sim: Simulator, rng: RngRegistry, names=("alice", "bob")):
        self.sim = sim
        self.rng = rng
        self.topology = StarTopology(sim)
        self.hosts = {}
        for index, name in enumerate(names, start=1):
            host = Host(
                sim,
                name,
                ip=Ipv4Address(f"192.168.1.{index}"),
                mac=MacAddress.from_index(index),
                rng=rng,
            )
            nic = StandardNic(sim, name=f"{name}.nic")
            nic.attach(self.topology.add_station(name))
            host.attach_nic(nic)
            self.hosts[name] = host
        for a in self.hosts.values():
            for b in self.hosts.values():
                if a is not b:
                    a.ip_layer.arp_table[b.ip] = b.mac

    def __getitem__(self, name: str) -> Host:
        return self.hosts[name]

    def run(self, duration: float) -> None:
        self.sim.run(until=self.sim.now + duration)


@pytest.fixture
def mininet(sim, rng):
    """Two hosts, alice and bob, ready to talk."""
    return MiniNet(sim, rng)


@pytest.fixture
def trinet(sim, rng):
    """Three hosts: alice, bob and mallory."""
    return MiniNet(sim, rng, names=("alice", "bob", "mallory"))
