"""Tests for TCP loss recovery: fast retransmit, SACK repair, RTO.

Losses are injected deterministically by wrapping the receiving host's
NIC ingress with a selective dropper.
"""

import pytest

from repro.host.tcp import TcpState


class FrameDropper:
    """Drops the Nth..Mth TCP *data* frames arriving at a NIC."""

    def __init__(self, nic, drop_indices):
        self.nic = nic
        self.drop_indices = set(drop_indices)
        self.seen = 0
        self.dropped = 0
        self._original = nic.receive_frame
        nic.receive_frame = self._filter

    def _filter(self, frame, port):
        packet = frame.ip
        if packet is not None and packet.tcp is not None and packet.tcp.payload_size:
            self.seen += 1
            if self.seen in self.drop_indices:
                self.dropped += 1
                return  # silently dropped
        self._original(frame, port)


def transfer(mininet, total_bytes, drop_indices=(), duration=5.0):
    """Run a transfer alice -> bob dropping chosen data frames at bob."""
    alice, bob = mininet["alice"], mininet["bob"]
    received = []

    def on_accept(conn):
        conn.on_data = lambda c, data, size: received.append(size)

    bob.tcp.listen(5001, on_accept)
    dropper = FrameDropper(bob.nic, drop_indices)
    conn = alice.tcp.connect(bob.ip, 5001)
    conn.on_connected = lambda c: c.send(total_bytes)
    mininet.run(duration)
    return sum(received), conn, dropper


class TestLossRecovery:
    def test_single_loss_recovers_completely(self, mininet):
        total, conn, dropper = transfer(mininet, 200_000, drop_indices={10})
        assert dropper.dropped == 1
        assert total == 200_000
        assert conn.segments_retransmitted >= 1

    def test_single_loss_uses_fast_retransmit_not_rto(self, mininet):
        total, conn, dropper = transfer(
            mininet, 200_000, drop_indices={30}, duration=1.0
        )
        # With fast retransmit the whole 200 kB finishes in well under a
        # second; an RTO stall would push completion past the window.
        assert total == 200_000
        assert conn.retries == 0

    def test_burst_loss_recovers_via_sack(self, mininet):
        # Drop five consecutive data frames mid-stream.
        total, conn, dropper = transfer(
            mininet, 400_000, drop_indices=set(range(40, 45)), duration=2.0
        )
        assert dropper.dropped == 5
        assert total == 400_000

    def test_scattered_losses_recover(self, mininet):
        drops = {15, 40, 41, 90, 130, 200}
        total, conn, dropper = transfer(mininet, 500_000, drop_indices=drops)
        assert dropper.dropped == len(drops)
        assert total == 500_000

    def test_loss_of_first_data_segment_recovers(self, mininet):
        total, conn, dropper = transfer(mininet, 100_000, drop_indices={1})
        assert total == 100_000

    def test_heavy_periodic_loss_still_completes(self, mininet):
        # Every 10th data frame dropped on first transmission.
        drops = set(range(10, 400, 10))
        total, conn, dropper = transfer(
            mininet, 400_000, drop_indices=drops, duration=10.0
        )
        assert total == 400_000

    def test_cwnd_halves_on_loss_event(self, mininet):
        alice, bob = mininet["alice"], mininet["bob"]
        bob.tcp.listen(5001, lambda conn: None)
        dropper = FrameDropper(bob.nic, {25})
        conn = alice.tcp.connect(bob.ip, 5001)
        peak = []

        def on_connected(c):
            c.send(2_000_000)

        conn.on_connected = on_connected
        # Sample cwnd shortly before and after the loss is repaired.
        mininet.run(5.0)
        assert conn.segments_retransmitted >= 1
        assert conn.ssthresh < 65535  # reduced from the initial ceiling

    def test_stream_content_survives_loss(self, mininet):
        alice, bob = mininet["alice"], mininet["bob"]
        chunks = []

        def on_accept(conn):
            conn.on_data = lambda c, data, size: chunks.append((data, size))

        bob.tcp.listen(5001, on_accept)
        FrameDropper(bob.nic, {2, 3})
        conn = alice.tcp.connect(bob.ip, 5001)
        marker = b"END-MARKER"

        def on_connected(c):
            c.send(30_000)
            c.send(len(marker), marker)

        conn.on_connected = on_connected
        mininet.run(5.0)
        stream = b"".join(data for data, _ in chunks)
        total = sum(size for _, size in chunks)
        assert total == 30_000 + len(marker)
        assert stream.endswith(marker)


class TestRtoBehaviour:
    def test_rto_backoff_on_repeated_loss(self, mininet):
        # Drop ALL data frames: the connection must back off and abort.
        alice, bob = mininet["alice"], mininet["bob"]
        bob.tcp.listen(5001, lambda conn: None)
        FrameDropper(bob.nic, set(range(1, 100000)))
        conn = alice.tcp.connect(bob.ip, 5001)
        closed = []
        conn.on_connected = lambda c: c.send(10_000)
        conn.on_closed = lambda c: closed.append(mininet.sim.now)
        mininet.run(120.0)
        assert closed  # MAX_DATA_RETRIES exhausted
        assert conn.state == TcpState.CLOSED

    def test_rtt_estimator_tracks_lan_latency(self, mininet):
        alice, bob = mininet["alice"], mininet["bob"]
        received = []

        def on_accept(conn):
            conn.on_data = lambda c, data, size: received.append(size)

        bob.tcp.listen(5001, on_accept)
        conn = alice.tcp.connect(bob.ip, 5001)
        conn.on_connected = lambda c: c.send(1_000_000)
        mininet.run(0.5)
        assert conn.srtt is not None
        assert conn.srtt < 0.05  # LAN-scale RTT, inflated at most by delack
        assert conn.rto >= 0.2  # Linux-style minimum
