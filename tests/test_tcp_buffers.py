"""Tests for the TCP send/receive stream buffers."""

import pytest
from hypothesis import given, strategies as st

from repro.host.tcp import ReceiveBuffer, SendBuffer


class TestSendBuffer:
    def test_write_accumulates_length(self):
        buffer = SendBuffer()
        buffer.write(100)
        buffer.write(50, b"hello")
        assert buffer.length == 150

    def test_slice_returns_real_bytes_at_offset(self):
        buffer = SendBuffer()
        buffer.write(10)
        buffer.write(5, b"hello")
        assert buffer.slice(10, 15) == b"hello"

    def test_slice_of_size_only_region_is_empty(self):
        buffer = SendBuffer()
        buffer.write(100)
        assert buffer.slice(0, 50) == b""

    def test_slice_partial_chunk(self):
        buffer = SendBuffer()
        buffer.write(6, b"abcdef")
        assert buffer.slice(2, 4) == b"cd"

    def test_slice_zero_fills_gap_before_chunk(self):
        buffer = SendBuffer()
        buffer.write(4)
        buffer.write(2, b"xy")
        piece = buffer.slice(0, 6)
        assert piece == b"\x00\x00\x00\x00xy"

    def test_slice_bounds_checked(self):
        buffer = SendBuffer()
        buffer.write(10)
        with pytest.raises(ValueError):
            buffer.slice(5, 20)
        with pytest.raises(ValueError):
            buffer.slice(-1, 5)

    def test_data_longer_than_size_rejected(self):
        buffer = SendBuffer()
        with pytest.raises(ValueError):
            buffer.write(2, b"abc")

    def test_negative_size_rejected(self):
        buffer = SendBuffer()
        with pytest.raises(ValueError):
            buffer.write(-1)

    def test_release_before_forgets_acked_chunks(self):
        buffer = SendBuffer()
        buffer.write(5, b"aaaaa")
        buffer.write(5, b"bbbbb")
        buffer.release_before(5)
        assert buffer.slice(5, 10) == b"bbbbb"
        assert buffer.slice(0, 5) == b""  # forgotten (already acked)


class TestReceiveBuffer:
    def test_in_order_delivery(self):
        buffer = ReceiveBuffer(1000)
        pieces = buffer.offer(1000, 10, b"0123456789")
        assert pieces == [(10, b"0123456789")]
        assert buffer.rcv_nxt == 1010

    def test_duplicate_ignored(self):
        buffer = ReceiveBuffer(1000)
        buffer.offer(1000, 10, b"")
        assert buffer.offer(1000, 10, b"") == []

    def test_partial_overlap_trimmed(self):
        buffer = ReceiveBuffer(1000)
        buffer.offer(1000, 10, b"abcdefghij")
        pieces = buffer.offer(1005, 10, b"fghijKLMNO")
        assert pieces == [(5, b"KLMNO")]
        assert buffer.rcv_nxt == 1015

    def test_out_of_order_buffered_then_released(self):
        buffer = ReceiveBuffer(0)
        assert buffer.offer(10, 10, b"BBBBBBBBBB") == []
        assert buffer.out_of_order_count == 1
        pieces = buffer.offer(0, 10, b"AAAAAAAAAA")
        assert pieces == [(10, b"AAAAAAAAAA"), (10, b"BBBBBBBBBB")]
        assert buffer.rcv_nxt == 20
        assert buffer.out_of_order_count == 0

    def test_multiple_gaps_fill_in_any_order(self):
        buffer = ReceiveBuffer(0)
        buffer.offer(20, 10, b"C" * 10)
        buffer.offer(10, 10, b"B" * 10)
        pieces = buffer.offer(0, 10, b"A" * 10)
        assert [size for size, _ in pieces] == [10, 10, 10]
        assert buffer.rcv_nxt == 30

    def test_sack_blocks_report_merged_ranges(self):
        buffer = ReceiveBuffer(0)
        buffer.offer(10, 10, b"")
        buffer.offer(20, 10, b"")
        buffer.offer(50, 5, b"")
        assert buffer.sack_blocks() == ((10, 30), (50, 55))

    def test_sack_blocks_empty_when_in_order(self):
        buffer = ReceiveBuffer(0)
        buffer.offer(0, 10, b"")
        assert buffer.sack_blocks() == ()

    def test_sack_blocks_limit(self):
        buffer = ReceiveBuffer(0)
        for start in (10, 30, 50, 70, 90):
            buffer.offer(start, 5, b"")
        assert len(buffer.sack_blocks(limit=3)) == 3

    @given(st.permutations(list(range(12))), st.data())
    def test_random_segmentation_reassembles_exactly(self, order, data):
        # Split a known stream into 12 contiguous pieces, deliver them in
        # an arbitrary order (with some duplicates), and require the
        # delivered stream to equal the original.
        stream = bytes(range(96))
        piece_size = 8
        buffer = ReceiveBuffer(0)
        delivered = bytearray()
        for index in order:
            start = index * piece_size
            chunk = stream[start : start + piece_size]
            for size, piece in buffer.offer(start, piece_size, chunk):
                delivered.extend(piece if piece else b"\x00" * size)
            if data.draw(st.booleans()):
                # Duplicate delivery must never corrupt the stream.
                for size, piece in buffer.offer(start, piece_size, chunk):
                    delivered.extend(piece if piece else b"\x00" * size)
        assert bytes(delivered) == stream
