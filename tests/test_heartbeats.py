"""Tests for agent heartbeats and central lockup detection."""

import pytest

from repro.apps.flood import FloodGenerator, FloodKind, FloodSpec
from repro.core.testbed import DeviceKind, Testbed
from repro.firewall.builders import allow_all, deny_all
from repro.net.packet import IpProtocol
from repro.policy.audit import AuditEventKind


def heartbeat_testbed(device=DeviceKind.EFW):
    bed = Testbed(device=device)
    bed.policy_server.enable_heartbeat_monitor(check_interval=0.5, grace=1.5)
    bed.agents["target"].start_heartbeat(bed.policy_server.host.ip, interval=0.5)
    return bed


class TestHeartbeats:
    def test_healthy_agent_stays_alive(self):
        bed = heartbeat_testbed()
        bed.install_target_policy(allow_all())
        bed.run(5.0)
        assert not bed.policy_server.agent_is_silent("target")
        assert bed.agents["target"].heartbeats_sent >= 9
        assert bed.policy_server.audit.events(kind=AuditEventKind.HEARTBEAT_MISSED) == []

    def test_wedged_card_detected_centrally(self):
        bed = heartbeat_testbed()
        bed.install_target_policy(deny_all())
        bed.run(2.0)
        assert not bed.policy_server.agent_is_silent("target")
        # Deny-flood wedges the EFW; its heartbeats stop reaching the wire.
        flood = FloodGenerator(bed.attacker, FloodSpec(kind=FloodKind.UDP, dst_port=9))
        flood.start(bed.target.ip, rate_pps=2000, duration=1.0)
        bed.run(4.0)
        assert bed.target.nic.wedged
        assert bed.policy_server.agent_is_silent("target")
        missed = bed.policy_server.audit.events(kind=AuditEventKind.HEARTBEAT_MISSED)
        assert len(missed) == 1
        assert missed[0].subject == "target"

    def test_recovery_clears_silence(self):
        bed = heartbeat_testbed()
        bed.install_target_policy(deny_all())
        flood = FloodGenerator(bed.attacker, FloodSpec(kind=FloodKind.UDP, dst_port=9))
        flood.start(bed.target.ip, rate_pps=2000, duration=1.0)
        bed.run(4.0)
        assert bed.policy_server.agent_is_silent("target")
        bed.restart_target_agent()
        bed.run(2.0)
        assert not bed.policy_server.agent_is_silent("target")

    def test_double_enable_rejected(self):
        bed = heartbeat_testbed()
        with pytest.raises(RuntimeError):
            bed.policy_server.enable_heartbeat_monitor()

    def test_double_heartbeat_start_rejected(self):
        bed = heartbeat_testbed()
        with pytest.raises(RuntimeError):
            bed.agents["target"].start_heartbeat(bed.policy_server.host.ip)

    def test_stop_heartbeat(self):
        bed = heartbeat_testbed()
        bed.install_target_policy(allow_all())
        bed.run(1.0)
        bed.agents["target"].stop_heartbeat()
        sent = bed.agents["target"].heartbeats_sent
        bed.run(2.0)
        assert bed.agents["target"].heartbeats_sent == sent
        assert bed.policy_server.agent_is_silent("target")


class TestHeartbeatEpisodes:
    """Episode semantics: exactly one MISSED/RESTORED pair per outage."""

    def test_blip_inside_grace_window_fires_nothing(self):
        # Beacons pause but resume before the grace window expires: the
        # monitor must stay quiet (no MISSED, and therefore nothing to
        # restore).
        bed = heartbeat_testbed()
        bed.install_target_policy(allow_all())
        bed.run(2.0)
        bed.agents["target"].stop_heartbeat()
        bed.run(0.8)  # well inside the 1.5 s grace
        bed.agents["target"].start_heartbeat(bed.policy_server.host.ip, interval=0.5)
        bed.run(3.0)
        audit = bed.policy_server.audit
        assert audit.events(kind=AuditEventKind.HEARTBEAT_MISSED) == []
        assert audit.events(kind=AuditEventKind.HEARTBEAT_RESTORED) == []
        assert not bed.policy_server.agent_is_silent("target")

    def test_single_stale_beat_does_not_flap_the_episode(self):
        # One beacon draining out of a queue mid-outage must neither
        # clear the silence (recovery takes recovery_beats consecutive
        # beats) nor re-fire MISSED when the host goes stale again.
        bed = heartbeat_testbed()
        server = bed.policy_server
        bed.install_target_policy(allow_all())
        bed.agents["target"].stop_heartbeat()
        bed.run(3.0)
        assert server.agent_is_silent("target")
        server._heartbeat_received(bed.target.ip, 0, 16, b"target")
        bed.run(3.0)
        assert server.agent_is_silent("target")
        audit = server.audit
        assert len(audit.events(kind=AuditEventKind.HEARTBEAT_MISSED)) == 1
        assert audit.events(kind=AuditEventKind.HEARTBEAT_RESTORED) == []

    def test_recovery_is_audited_once(self):
        bed = heartbeat_testbed()
        bed.install_target_policy(deny_all())
        flood = FloodGenerator(bed.attacker, FloodSpec(kind=FloodKind.UDP, dst_port=9))
        flood.start(bed.target.ip, rate_pps=2000, duration=1.0)
        bed.run(4.0)
        assert bed.policy_server.agent_is_silent("target")
        bed.restart_target_agent()
        bed.run(3.0)
        audit = bed.policy_server.audit
        assert not bed.policy_server.agent_is_silent("target")
        assert len(audit.events(kind=AuditEventKind.HEARTBEAT_MISSED)) == 1
        restored = audit.events(kind=AuditEventKind.HEARTBEAT_RESTORED)
        assert len(restored) == 1
        assert restored[0].subject == "target"

    def test_server_restart_repushes_policy_and_primes_recovery(self):
        # PolicyServer.restart_agent restores *protection*, not just
        # functionality: the NIC restart wipes the installed rule-set and
        # the server immediately re-pushes the assignment.  The restart
        # also counts as a liveness assertion, so the episode clears on
        # the next in-grace check instead of waiting out a beat streak.
        bed = heartbeat_testbed()
        server = bed.policy_server
        bed.install_target_policy(deny_all())
        flood = FloodGenerator(bed.attacker, FloodSpec(kind=FloodKind.UDP, dst_port=9))
        flood.start(bed.target.ip, rate_pps=2000, duration=1.0)
        bed.run(4.0)
        assert bed.target.nic.wedged
        assert server.agent_is_silent("target")
        server.restart_agent("target")
        assert not bed.target.nic.wedged
        assert bed.target.nic.policy is not None
        bed.run(1.0)
        assert not server.agent_is_silent("target")
        assert len(server.audit.events(kind=AuditEventKind.HEARTBEAT_RESTORED)) == 1

    def test_each_outage_is_its_own_episode(self):
        # Wedge, recover, wedge again: two episodes, two MISSED events.
        bed = heartbeat_testbed()
        server = bed.policy_server
        bed.install_target_policy(deny_all())
        for _ in range(2):
            flood = FloodGenerator(
                bed.attacker, FloodSpec(kind=FloodKind.UDP, dst_port=9)
            )
            flood.start(bed.target.ip, rate_pps=2000, duration=1.0)
            bed.run(4.0)
            assert server.agent_is_silent("target")
            server.restart_agent("target")
            bed.run(3.0)
            assert not server.agent_is_silent("target")
        assert len(server.audit.events(kind=AuditEventKind.HEARTBEAT_MISSED)) == 2
        assert len(server.audit.events(kind=AuditEventKind.HEARTBEAT_RESTORED)) == 2


class TestControlChannel:
    def test_policy_updates_survive_deny_all(self):
        # The management plane is reserved: even a deny-all policy must
        # not block subsequent pushes (else a card could never be
        # re-policied).
        bed = Testbed(device=DeviceKind.EFW)
        bed.install_target_policy(deny_all(), networked_push=True)
        assert bed.target.nic.policy is not None
        first_policy = bed.target.nic.policy
        bed.install_target_policy(allow_all(), networked_push=True)
        bed.run(0.1)
        assert bed.target.nic.policy is not first_policy
        assert bed.policy_server.pushes_acked == 2

    def test_control_traffic_detector(self):
        from repro.net.addresses import Ipv4Address
        from repro.net.packet import Ipv4Packet, TcpSegment, UdpDatagram
        from repro.policy_ports import AGENT_PORT, is_control_traffic

        a, b = Ipv4Address("10.0.0.1"), Ipv4Address("10.0.0.3")
        push = Ipv4Packet(src=a, dst=b, payload=UdpDatagram(40000, AGENT_PORT))
        assert is_control_traffic(push)
        plain = Ipv4Packet(src=a, dst=b, payload=UdpDatagram(40000, 53))
        assert not is_control_traffic(plain)
        tcp_same_port = Ipv4Packet(
            src=a, dst=b, payload=TcpSegment(src_port=40000, dst_port=AGENT_PORT)
        )
        assert not is_control_traffic(tcp_same_port)

    def test_control_port_flood_costs_processor_time_but_never_wedges(self):
        # The reserved channel is not rule-walked, so control packets are
        # the card's *cheapest* — but they still cross the processor
        # (substantial utilisation at high rates) and, being allowed, can
        # never trigger the deny-flood lockup.
        from repro.policy_ports import HEARTBEAT_PORT

        bed = Testbed(device=DeviceKind.EFW)
        bed.install_target_policy(deny_all())
        flood = FloodGenerator(
            bed.attacker, FloodSpec(kind=FloodKind.UDP, dst_port=HEARTBEAT_PORT)
        )
        flood.start(bed.target.ip, rate_pps=95000, duration=0.5)
        bed.run(0.6)
        nic = bed.target.nic
        assert not nic.wedged
        assert nic.rx_denied == 0
        assert nic.rx_allowed > 40_000
        assert nic.processor.utilisation(0.6) > 0.5


class TestVpgAdministration:
    def test_create_group_and_members_audited(self):
        bed = Testbed(device=DeviceKind.ADF, client_device=DeviceKind.ADF)
        server = bed.policy_server
        group = server.create_vpg_group("web", protocol=IpProtocol.TCP, port=80)
        server.add_vpg_member(group, bed.client.ip)
        server.add_vpg_member(group, bed.target.ip)
        kinds = [event.kind for event in server.audit.events()]
        assert kinds.count(AuditEventKind.VPG_CREATED) == 1
        assert kinds.count(AuditEventKind.VPG_MEMBER_ADDED) == 2
        assert group.rule_for_member(bed.target.ip).vpg_id == group.vpg_id
