"""Tests for the discrete-event kernel."""

import pytest

from repro.sim.engine import SimulationError, Simulator


class TestScheduling:
    def test_events_run_in_time_order(self, sim):
        fired = []
        sim.schedule(2.0, fired.append, "late")
        sim.schedule(1.0, fired.append, "early")
        sim.run()
        assert fired == ["early", "late"]

    def test_same_time_events_run_fifo(self, sim):
        fired = []
        for tag in range(5):
            sim.schedule(1.0, fired.append, tag)
        sim.run()
        assert fired == [0, 1, 2, 3, 4]

    def test_clock_advances_to_event_time(self, sim):
        seen = []
        sim.schedule(3.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [3.5]

    def test_schedule_at_absolute_time(self, sim):
        fired = []
        sim.schedule_at(7.25, fired.append, "x")
        sim.run()
        assert sim.now == 7.25
        assert fired == ["x"]

    def test_call_soon_runs_at_current_time(self, sim):
        fired = []
        sim.schedule(1.0, lambda: sim.call_soon(fired.append, sim.now))
        sim.run()
        assert fired == [1.0]

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-0.1, lambda: None)

    def test_schedule_in_past_rejected(self, sim):
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(1.0, lambda: None)

    def test_events_scheduled_during_run_execute(self, sim):
        fired = []
        sim.schedule(1.0, lambda: sim.schedule(1.0, fired.append, "nested"))
        sim.run()
        assert fired == ["nested"]
        assert sim.now == 2.0


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, sim):
        fired = []
        event = sim.schedule(1.0, fired.append, "x")
        event.cancel()
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self, sim):
        event = sim.schedule(1.0, lambda: None)
        event.cancel()
        event.cancel()
        assert not event.pending

    def test_cancel_releases_callback_references(self, sim):
        big = object()
        event = sim.schedule(1.0, lambda x: None, big)
        event.cancel()
        assert event.args == ()

    def test_pending_count_excludes_cancelled(self, sim):
        keep = sim.schedule(1.0, lambda: None)
        drop = sim.schedule(2.0, lambda: None)
        drop.cancel()
        assert sim.pending_count() == 1
        assert keep.pending


class TestRun:
    def test_run_until_stops_before_later_events(self, sim):
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(5.0, fired.append, "b")
        sim.run(until=2.0)
        assert fired == ["a"]
        assert sim.now == 2.0

    def test_run_until_advances_clock_even_with_no_events(self, sim):
        sim.run(until=4.0)
        assert sim.now == 4.0

    def test_remaining_events_run_on_next_run(self, sim):
        fired = []
        sim.schedule(5.0, fired.append, "late")
        sim.run(until=1.0)
        sim.run()
        assert fired == ["late"]

    def test_max_events_bounds_execution(self, sim):
        fired = []
        for tag in range(10):
            sim.schedule(1.0, fired.append, tag)
        sim.run(max_events=3)
        assert fired == [0, 1, 2]

    def test_step_runs_single_event(self, sim):
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(2.0, fired.append, "b")
        assert sim.step()
        assert fired == ["a"]

    def test_step_on_empty_heap_returns_false(self, sim):
        assert not sim.step()

    def test_run_is_not_reentrant(self, sim):
        def reenter():
            sim.run()

        sim.schedule(1.0, reenter)
        with pytest.raises(SimulationError):
            sim.run()

    def test_events_executed_counter(self, sim):
        for _ in range(4):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_executed == 4

    def test_start_time_constructor(self):
        sim = Simulator(start_time=100.0)
        assert sim.now == 100.0


class TestRunClockContract:
    """``run(until=..., max_events=...)`` clock semantics.

    Regression: the kernel used to return with a stale clock when
    ``max_events`` stopped the loop, even though no remaining event lay
    at or before ``until`` — measurement windows then closed at the last
    event's time instead of the requested boundary.
    """

    def test_truncation_with_no_remaining_work_advances_to_until(self, sim):
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(1.0, fired.append, "b")
        sim.schedule(9.0, fired.append, "far")
        sim.run(until=3.0, max_events=2)
        assert fired == ["a", "b"]
        # Only remaining work is beyond the window: clock closes at until.
        assert sim.now == 3.0

    def test_truncation_with_remaining_work_keeps_clock(self, sim):
        fired = []
        for tag in range(3):
            sim.schedule(1.0, fired.append, tag)
        sim.schedule(2.0, fired.append, "later")
        sim.run(until=3.0, max_events=2)
        assert fired == [0, 1]
        # An unexecuted event remains at t=1.0 <= until: advancing to 3.0
        # would let the resumed run move the clock backwards.
        assert sim.now == 1.0

    def test_resumed_run_finishes_the_window(self, sim):
        fired = []
        for tag in range(4):
            sim.schedule(1.0, fired.append, tag)
        sim.run(until=3.0, max_events=2)
        sim.run(until=3.0)
        assert fired == [0, 1, 2, 3]
        assert sim.now == 3.0

    def test_truncation_skips_cancelled_stragglers(self, sim):
        fired = []
        sim.schedule(1.0, fired.append, "a")
        doomed = sim.schedule(2.0, fired.append, "never")
        doomed.cancel()
        sim.run(until=3.0, max_events=1)
        assert fired == ["a"]
        # The only event before until is a tombstone: advance to until.
        assert sim.now == 3.0


class TestPendingAccounting:
    """pending_count() is a live counter, robust to lazy tombstones."""

    def test_counter_tracks_schedule_execute_cancel(self, sim):
        events = [sim.schedule(float(tag + 1), lambda: None) for tag in range(10)]
        assert sim.pending_count() == 10
        events[9].cancel()
        assert sim.pending_count() == 9
        sim.run(until=5.0)  # executes t=1..5
        assert sim.pending_count() == 4

    def test_cancel_after_execution_does_not_corrupt_counter(self, sim):
        event = sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.pending_count() == 0
        event.cancel()  # late cancel of an already-executed event
        assert sim.pending_count() == 0

    def test_mass_cancellation_compacts_the_heap(self, sim):
        survivor = sim.schedule(10.0, lambda: None)
        doomed = [sim.schedule(1.0, lambda: None) for _ in range(2000)]
        for event in doomed:
            event.cancel()
        assert sim.pending_count() == 1
        # Tombstones were purged rather than left to linger until t=1.0.
        assert len(sim._heap) < 600
        sim.run()
        assert sim.now == 10.0
        assert survivor.pending  # cancel() never ran on it

    def test_compaction_during_run_is_safe(self, sim):
        fired = []
        doomed = [sim.schedule(5.0, lambda: None) for _ in range(1500)]

        def cancel_all():
            for event in doomed:
                event.cancel()

        sim.schedule(1.0, cancel_all)
        sim.schedule(8.0, fired.append, "end")
        sim.run()
        assert fired == ["end"]
        assert sim.now == 8.0
        assert sim.pending_count() == 0


class TestBatchedSameTimestampDispatch:
    """Regression pins for the time-bucket kernel: a timestamp's events
    drain as one FIFO batch, and insertions/cancellations made *during*
    the batch keep the exact ordering the heap kernel guaranteed."""

    def test_insertions_during_a_batch_join_its_tail(self, sim):
        fired = []

        def first():
            fired.append("first")
            # Same-timestamp insertion while the batch is draining: runs
            # after everything already queued for this instant.
            sim.call_soon(fired.append, "appended")

        sim.schedule(1.0, first)
        sim.schedule(1.0, fired.append, "second")
        sim.run()
        assert fired == ["first", "second", "appended"]

    def test_cancellation_inside_a_batch_is_honoured(self, sim):
        fired = []
        victim = sim.schedule(1.0, fired.append, "victim")

        def assassin():
            fired.append("assassin")
            victim.cancel()

        # The assassin fires just before the shared timestamp, so the
        # victim must not run even though its batch is already formed.
        sim.schedule(1.0, fired.append, "bystander")
        sim.schedule(0.9999, assassin)
        sim.run()
        assert fired == ["assassin", "bystander"]
        assert sim.events_cancelled == 1

    def test_nested_same_time_chains_stay_fifo(self, sim):
        fired = []

        def chain(depth):
            fired.append(depth)
            if depth < 3:
                sim.call_soon(chain, depth + 1)

        sim.schedule(1.0, chain, 0)
        sim.schedule(1.0, fired.append, "peer-a")
        sim.schedule(1.0, fired.append, "peer-b")
        sim.run()
        # Each nested call_soon lands behind the peers queued earlier.
        assert fired == [0, "peer-a", "peer-b", 1, 2, 3]
        assert sim.now == 1.0

    def test_interleaved_timestamps_drain_in_order(self, sim):
        fired = []
        for when, tag in ((2.0, "b1"), (1.0, "a1"), (2.0, "b2"), (1.0, "a2")):
            sim.schedule(when, fired.append, tag)
        sim.run()
        assert fired == ["a1", "a2", "b1", "b2"]
