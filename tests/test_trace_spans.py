"""Causality properties of packet-lifecycle traces.

A fig3a-style flood sweep runs with tracing armed; every traced packet
must come back as a *well-formed span tree*: exactly one root, unique
span ids, every parent present in the same trace, parents starting no
later than their children in virtual time, and one trace id end-to-end.
And because trace snapshots ride the same ordered-collection machinery
as metrics, ``jobs=1`` and ``jobs=N`` must produce identical traces.
"""

import importlib
import sys

import pytest

from repro.core.methodology import MeasurementSettings
from repro.core.parallel import SweepExecutor, SweepPointSpec
from repro.core.testbed import DeviceKind
from repro.experiments.fig3a_flood import _flood_point
from repro.experiments.results import serialize
from repro.obs.tracing import TraceCollector, TraceConfig

SETTINGS = MeasurementSettings(duration=0.2, flood_lead=0.05, repetitions=1)

#: A reduced Figure-3a-style grid: an allowed-traffic baseline and a
#: flooded ADF point (the flood exercises deny events and queue drops).
PLANS = (
    (DeviceKind.STANDARD, 0.0),
    (DeviceKind.ADF, 20_000.0),
)


def _specs():
    return [
        SweepPointSpec(
            label=f"trace-test: {device.name} flood={rate:.0f}",
            fn=_flood_point,
            kwargs={
                "device": device,
                "rate": rate,
                "vpg_count": 0,
                "settings": SETTINGS,
            },
        )
        for device, rate in PLANS
    ]


def _run_collect(jobs: int) -> TraceCollector:
    collector = TraceCollector(TraceConfig(spans=True, sample_every=5, flight=True))
    SweepExecutor(jobs=jobs, trace=collector).run(_specs())
    return collector


@pytest.fixture(scope="module")
def serial_collector() -> TraceCollector:
    return _run_collect(jobs=1)


def _trees(snapshot):
    """Group a snapshot's spans into {trace_id: [spans]}."""
    trees = {}
    for span in snapshot.spans:
        trees.setdefault(span.trace_id, []).append(span)
    return trees


class TestSpanTreeWellFormedness:
    def test_sweep_produced_traces(self, serial_collector):
        assert len(serial_collector) == len(PLANS)
        total = sum(
            len(snapshot.spans)
            for point in serial_collector.points
            for snapshot in point.snapshots
        )
        assert total > 0

    def test_every_tree_has_exactly_one_root(self, serial_collector):
        for point in serial_collector.points:
            for snapshot in point.snapshots:
                for trace_id, spans in _trees(snapshot).items():
                    roots = [s for s in spans if s.parent_id is None]
                    assert len(roots) == 1, (
                        f"trace {trace_id} in {point.label} has {len(roots)} roots"
                    )
                    assert roots[0].name in ("app.send", "nic.send")

    def test_span_ids_unique_and_parents_in_same_trace(self, serial_collector):
        for point in serial_collector.points:
            for snapshot in point.snapshots:
                for trace_id, spans in _trees(snapshot).items():
                    ids = [s.span_id for s in spans]
                    assert len(ids) == len(set(ids))
                    id_set = set(ids)
                    for span in spans:
                        assert span.trace_id == trace_id
                        if span.parent_id is not None:
                            assert span.parent_id in id_set, (
                                f"span {span.span_id} ({span.name}) parents "
                                f"{span.parent_id}, not part of trace {trace_id}"
                            )

    def test_parents_precede_children_in_virtual_time(self, serial_collector):
        for point in serial_collector.points:
            for snapshot in point.snapshots:
                for spans in _trees(snapshot).values():
                    by_id = {s.span_id: s for s in spans}
                    for span in spans:
                        assert span.start <= span.end + 1e-12
                        if span.parent_id is None:
                            continue
                        parent = by_id[span.parent_id]
                        assert parent.start <= span.start + 1e-12, (
                            f"child {span.name} starts at {span.start} before "
                            f"its parent {parent.name} at {parent.start}"
                        )

    def test_delivered_packets_span_the_full_pipeline(self, serial_collector):
        delivered_trees = 0
        for point in serial_collector.points:
            for snapshot in point.snapshots:
                for spans in _trees(snapshot).values():
                    names = {s.name for s in spans}
                    if "app.deliver" not in names:
                        continue
                    delivered_trees += 1
                    # An end-to-end delivery crossed the NIC and the wire.
                    assert "link.tx" in names
                    assert "nic.tx" in names or "nic.rx" in names
        assert delivered_trees > 0


class TestWorkerCountEquivalence:
    def test_jobs_1_and_jobs_2_trace_identically(self, serial_collector):
        parallel_collector = _run_collect(jobs=2)
        serial = serialize(serial_collector.experiment("trace-test"))
        parallel = serialize(parallel_collector.experiment("trace-test"))
        assert serial == parallel


class TestLegacyShim:
    def test_sim_trace_shim_is_gone(self):
        # The repro.sim.trace forwarding shim was removed after its
        # one-release grace period; it must not silently reappear.
        sys.modules.pop("repro.sim.trace", None)
        with pytest.raises(ModuleNotFoundError):
            importlib.import_module("repro.sim.trace")

    def test_package_alias_matches_new_home(self):
        import repro.sim as sim
        from repro.obs.tracing import PacketTracer

        assert sim.Tracer is PacketTracer
