"""Property-based tests for connection-tracking invariants."""

from hypothesis import given, strategies as st

from repro.firewall.conntrack import ConnState, ConnectionTracker, flow_key
from repro.net.addresses import Ipv4Address
from repro.net.packet import (
    IcmpMessage,
    IcmpType,
    IpProtocol,
    Ipv4Packet,
    TcpSegment,
    UdpDatagram,
)
from repro.sim.engine import Simulator

addresses = st.integers(0, (1 << 32) - 1).map(Ipv4Address)
ports = st.integers(0, 65535)


@st.composite
def tcp_packets(draw):
    return Ipv4Packet(
        src=draw(addresses),
        dst=draw(addresses),
        payload=TcpSegment(src_port=draw(ports), dst_port=draw(ports)),
    )


@st.composite
def udp_packets(draw):
    return Ipv4Packet(
        src=draw(addresses),
        dst=draw(addresses),
        payload=UdpDatagram(src_port=draw(ports), dst_port=draw(ports)),
    )


def mirrored(packet):
    payload = packet.payload
    if isinstance(payload, TcpSegment):
        reverse = TcpSegment(src_port=payload.dst_port, dst_port=payload.src_port)
    elif isinstance(payload, UdpDatagram):
        reverse = UdpDatagram(src_port=payload.dst_port, dst_port=payload.src_port)
    else:
        reverse = IcmpMessage(
            icmp_type=IcmpType.ECHO_REPLY, identifier=payload.identifier
        )
    return Ipv4Packet(src=packet.dst, dst=packet.src, payload=reverse)


class TestFlowKeyProperties:
    @given(packet=st.one_of(tcp_packets(), udp_packets()))
    def test_key_is_direction_invariant(self, packet):
        assert flow_key(packet) == flow_key(mirrored(packet))

    @given(packet=st.one_of(tcp_packets(), udp_packets()))
    def test_key_is_stable(self, packet):
        assert flow_key(packet) == flow_key(packet)

    @given(a=tcp_packets(), b=tcp_packets())
    def test_distinct_unordered_tuples_get_distinct_keys(self, a, b):
        def unordered(packet):
            proto, src, sport, dst, dport = packet.flow()
            return frozenset(((int(src), sport), (int(dst), dport)))

        if unordered(a) != unordered(b):
            assert flow_key(a) != flow_key(b)


class TestTrackerProperties:
    @given(packets=st.lists(st.one_of(tcp_packets(), udp_packets()), max_size=30))
    def test_entry_count_never_exceeds_bound(self, packets):
        sim = Simulator()
        tracker = ConnectionTracker(sim, max_entries=5)
        for packet in packets:
            tracker.note(packet, initiating=True)
        assert len(tracker) <= 5

    @given(packet=st.one_of(tcp_packets(), udp_packets()))
    def test_committed_flow_is_established_both_ways(self, packet):
        sim = Simulator()
        tracker = ConnectionTracker(sim)
        tracker.note(packet, initiating=True)
        assert tracker.classify(packet) == ConnState.ESTABLISHED
        assert tracker.classify(mirrored(packet)) == ConnState.ESTABLISHED

    @given(packet=st.one_of(tcp_packets(), udp_packets()))
    def test_classify_never_creates_state(self, packet):
        sim = Simulator()
        tracker = ConnectionTracker(sim)
        tracker.classify(packet)
        tracker.classify(mirrored(packet))
        assert len(tracker) == 0
