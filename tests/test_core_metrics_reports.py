"""Tests for metrics, statistics helpers, report formatting and sweeps."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core import metrics, reports
from repro.core.sweeps import Sweep


class TestDosCriteria:
    def test_threshold(self):
        assert metrics.is_denial_of_service(0.5)
        assert not metrics.is_denial_of_service(5.0)

    def test_bandwidth_sample(self):
        sample = metrics.BandwidthSample(mbps=0.2, rule_depth=64, flood_rate_pps=5000)
        assert sample.is_dos

    def test_loss_fraction(self):
        assert metrics.loss_fraction(100, 50) == pytest.approx(0.5)
        assert metrics.loss_fraction(100, 120) == 0.0  # clamped

    def test_loss_fraction_rejects_bad_baseline(self):
        with pytest.raises(ValueError):
            metrics.loss_fraction(0, 10)

    def test_significant_loss(self):
        assert metrics.is_significant_loss(94, 50)
        assert not metrics.is_significant_loss(94, 90)


class TestStatistics:
    def test_mean(self):
        assert metrics.mean([1, 2, 3]) == 2
        assert math.isnan(metrics.mean([]))

    def test_stdev(self):
        assert metrics.stdev([2, 4, 4, 4, 5, 5, 7, 9]) == pytest.approx(2.138, abs=0.01)
        assert math.isnan(metrics.stdev([1]))

    def test_percentile(self):
        values = [1, 2, 3, 4, 5]
        assert metrics.percentile(values, 0.0) == 1
        assert metrics.percentile(values, 0.5) == 3
        assert metrics.percentile(values, 1.0) == 5
        assert metrics.percentile(values, 0.25) == 2

    def test_percentile_interpolates(self):
        assert metrics.percentile([0, 10], 0.75) == pytest.approx(7.5)

    def test_percentile_bounds(self):
        with pytest.raises(ValueError):
            metrics.percentile([1], 1.5)
        assert math.isnan(metrics.percentile([], 0.5))

    def test_summarize(self):
        summary = metrics.summarize([1.0, 2.0, 3.0])
        assert summary["mean"] == 2.0
        assert summary["min"] == 1.0
        assert summary["max"] == 3.0
        assert summary["count"] == 3

    def test_averaged_bandwidth(self):
        samples = [metrics.BandwidthSample(mbps=m) for m in (10, 20, 30)]
        assert metrics.averaged_bandwidth(samples) == 20

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=50))
    def test_percentile_monotone_property(self, values):
        p25 = metrics.percentile(values, 0.25)
        p75 = metrics.percentile(values, 0.75)
        assert p25 <= p75

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=50))
    def test_mean_within_bounds_property(self, values):
        centre = metrics.mean(values)
        assert min(values) - 1e-6 <= centre <= max(values) + 1e-6


class TestReports:
    def test_format_table_aligns_columns(self):
        text = reports.format_table(
            ["name", "value"], [["a", 1], ["long-name", 22.5]], title="demo"
        )
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5  # title, header, rule, 2 rows

    def test_format_table_renders_floats_and_nan(self):
        text = reports.format_table(["x"], [[float("nan")], [12345.6]])
        assert "n/a" in text
        assert "12,346" in text

    def test_markdown_table(self):
        text = reports.format_markdown_table(["a", "b"], [[1, 2]])
        assert text.splitlines()[0] == "| a | b |"
        assert "---" in text.splitlines()[1]

    def test_format_series(self):
        text = reports.format_series("efw", [(1, 94.9), (64, 47.5)], "depth", "mbps")
        assert "'efw'" in text
        assert "94.90" in text

    def test_ascii_plot_renders_marks(self):
        plot = reports.ascii_plot(
            [("efw", [(0, 0), (10, 10)]), ("adf", [(5, 5)])],
            width=20,
            height=5,
            x_label="x",
            y_label="y",
        )
        assert "e" in plot and "a" in plot
        assert "legend" in plot

    def test_ascii_plot_empty(self):
        assert reports.ascii_plot([]) == "(no data)"


class TestSweep:
    def test_cross_product_order(self):
        sweep = Sweep(lambda a, b: (a, b))
        points = sweep.run({"a": [1, 2], "b": ["x", "y"]})
        assert [point.result for point in points] == [
            (1, "x"), (1, "y"), (2, "x"), (2, "y"),
        ]

    def test_param_accessor(self):
        sweep = Sweep(lambda a: a * 10)
        points = sweep.run({"a": [3]})
        assert points[0].param("a") == 3
        with pytest.raises(KeyError):
            points[0].param("missing")

    def test_series_extraction_with_filter(self):
        sweep = Sweep(lambda device, depth: depth * (2 if device == "adf" else 1))
        sweep.run({"device": ["efw", "adf"], "depth": [1, 2]})
        series = sweep.series("depth", float, where={"device": "adf"})
        assert series == [(1, 2.0), (2, 4.0)]

    def test_progress_callback(self):
        lines = []
        sweep = Sweep(lambda a: a, progress=lines.append)
        sweep.run({"a": [1, 2]})
        assert len(lines) == 2
        assert "[1/2]" in lines[0]
