"""Tests for the RFC 2544-style throughput tester and the hardened NIC."""

import pytest

#: Full end-to-end regenerations; excluded from the default fast tier
#: (see [tool.pytest.ini_options] in pyproject.toml).
pytestmark = pytest.mark.slow

from repro import calibration
from repro.core.testbed import DeviceKind
from repro.core.throughput import ThroughputTester, TrialResult
from repro.nic.hardened import HARDENED_COST_MODEL
from repro.sim import units


class TestTrial:
    def test_low_rate_trial_is_lossless(self):
        tester = ThroughputTester(DeviceKind.EFW, trial_duration=0.2)
        outcome = tester.trial(1000)
        assert outcome.sent == pytest.approx(200, rel=0.05)
        assert outcome.loss_ratio < 0.01

    def test_overload_trial_shows_loss(self):
        tester = ThroughputTester(DeviceKind.EFW, rule_depth=64, trial_duration=0.2)
        outcome = tester.trial(50_000)  # far above the ~9.6k capacity
        assert outcome.loss_ratio > 0.5

    def test_loss_ratio_empty_trial(self):
        result = TrialResult(offered_pps=100, sent=0, received=0)
        assert result.loss_ratio == 0.0

    def test_frame_size_validation(self):
        with pytest.raises(ValueError):
            ThroughputTester(DeviceKind.EFW, frame_bytes=32)
        with pytest.raises(ValueError):
            ThroughputTester(DeviceKind.EFW, frame_bytes=9000)


class TestSearch:
    def test_efw_64b_matches_cost_model(self):
        tester = ThroughputTester(DeviceKind.EFW, frame_bytes=64, rule_depth=1)
        result = tester.search()
        predicted = calibration.EFW_COST_MODEL.capacity_pps(64, 1)
        assert result.rate_pps == pytest.approx(predicted, rel=0.07)
        assert not result.wire_limited

    def test_efw_64b_depth64_matches_cost_model(self):
        tester = ThroughputTester(DeviceKind.EFW, frame_bytes=64, rule_depth=64)
        result = tester.search()
        predicted = calibration.EFW_COST_MODEL.capacity_pps(64, 64)
        assert result.rate_pps == pytest.approx(predicted, rel=0.07)

    def test_efw_full_frames_one_rule_is_wire_limited(self):
        # The paper: with one rule the EFW supports full bandwidth.
        tester = ThroughputTester(DeviceKind.EFW, frame_bytes=1518, rule_depth=1)
        result = tester.search()
        assert result.wire_limited
        assert result.rate_pps == pytest.approx(units.MAX_FRAME_RATE_1518B, rel=0.01)

    def test_standard_nic_is_wire_limited_at_min_frames(self):
        tester = ThroughputTester(DeviceKind.STANDARD, frame_bytes=64)
        result = tester.search()
        assert result.wire_limited

    def test_mbps_property(self):
        tester = ThroughputTester(DeviceKind.STANDARD, frame_bytes=1518)
        result = tester.search()
        assert result.mbps == pytest.approx(result.rate_pps * 1518 * 8 / 1e6)


class TestHardenedNic:
    def test_cost_model_beats_wire_rate_with_responses(self):
        # Flood + response pair must fit inside one 64-byte frame time.
        per_packet = HARDENED_COST_MODEL.service_time(64, rules_traversed=64)
        frame_time = 1.0 / units.MAX_FRAME_RATE_64B
        assert 2 * per_packet < frame_time

    def test_wire_limited_even_at_depth_64(self):
        tester = ThroughputTester(DeviceKind.HARDENED, frame_bytes=64, rule_depth=64)
        result = tester.search()
        assert result.wire_limited

    def test_bandwidth_flat_to_64_rules(self):
        from repro.core.methodology import FloodToleranceValidator, MeasurementSettings

        validator = FloodToleranceValidator(
            DeviceKind.HARDENED, MeasurementSettings(duration=0.4)
        )
        shallow = validator.available_bandwidth(depth=1)
        deep = validator.available_bandwidth(depth=64)
        assert shallow.mbps > 90
        assert deep.mbps > 0.95 * shallow.mbps

    def test_flood_tolerance_matches_bare_nic_bound(self):
        # At ~148k pps of minimum frames the 100 Mbps wire itself is
        # saturated: even a standard NIC's host is denied service by pure
        # link exhaustion.  "Sufficient tolerance" means the firewall is
        # never the weaker link — its minimum DoS rate equals the bare
        # NIC's within measurement noise.
        from repro.core.methodology import FloodToleranceValidator, MeasurementSettings

        settings = MeasurementSettings(duration=0.4)
        hardened = FloodToleranceValidator(DeviceKind.HARDENED, settings).minimum_flood_rate(
            64, flood_allowed=True, probe_duration=0.4
        )
        bare = FloodToleranceValidator(DeviceKind.STANDARD, settings).minimum_flood_rate(
            1, flood_allowed=True, probe_duration=0.4
        )
        hardened_rate = hardened.rate_pps if hardened.measurable else float("inf")
        bare_rate = bare.rate_pps if bare.measurable else float("inf")
        assert hardened_rate >= 0.85 * bare_rate
        # And far beyond the EFW's ~5k pps at the same depth.
        assert hardened_rate > 50_000

    def test_denied_floods_do_not_wedge(self):
        from repro.core.methodology import FloodToleranceValidator, MeasurementSettings

        validator = FloodToleranceValidator(
            DeviceKind.HARDENED, MeasurementSettings(duration=0.4)
        )
        result = validator.minimum_flood_rate(16, flood_allowed=False, probe_duration=0.4)
        assert not result.lockup
        if result.measurable:
            assert result.rate_pps > 80_000  # link-scale, not card-scale

    def test_vpg_still_costs_bandwidth(self):
        # Crypto is compute, not lookup: the hardened card narrows but
        # does not erase the VPG gap.
        from repro.core.testbed import Testbed
        from repro.core.methodology import FloodToleranceValidator, MeasurementSettings

        validator = FloodToleranceValidator(
            DeviceKind.HARDENED, MeasurementSettings(duration=0.4)
        )
        # VPG measurements pair the device with an ADF client normally;
        # build the hardened pair by hand.
        bed = Testbed(device=DeviceKind.HARDENED, client_device=DeviceKind.HARDENED)
        validator_adf_path = validator  # reuse ruleset builders
        from repro.apps.iperf import IperfClient, IperfServer
        from repro.core.methodology import VPG_MSS
        from repro.firewall.builders import vpg_ruleset
        from repro.firewall.rules import Action, PortRange, VpgRule
        from repro.net.packet import IpProtocol

        matching = VpgRule(
            action=Action.ALLOW,
            protocol=IpProtocol.TCP,
            dst_ports=PortRange.single(5001),
            vpg_id=500,
        )
        bed.install_target_policy(vpg_ruleset(1, matching, name="t"))
        bed.install_client_policy(vpg_ruleset(1, matching, name="c"))
        bed.client.tcp.default_mss = VPG_MSS
        bed.target.tcp.default_mss = VPG_MSS
        IperfServer(bed.target)
        session = IperfClient(bed.client).start_tcp(bed.target.ip, duration=0.4)
        bed.run(0.45)
        vpg_mbps = session.result().mbps
        plain = validator_adf_path.available_bandwidth(depth=1)
        assert vpg_mbps < plain.mbps
        assert vpg_mbps > 40  # much better than the ADF's ~38 ceiling
