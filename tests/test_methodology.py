"""Tests for the validation methodology (reduced windows for speed)."""

import pytest

#: Full end-to-end regenerations; excluded from the default fast tier
#: (see [tool.pytest.ini_options] in pyproject.toml).
pytestmark = pytest.mark.slow

from repro.core.methodology import (
    FloodToleranceValidator,
    MeasurementSettings,
    VPG_MSS,
)
from repro.core.testbed import DeviceKind
from repro.firewall.rules import Action, Direction
from repro.net.addresses import Ipv4Address
from repro.net.packet import Ipv4Packet, TcpSegment

FAST = MeasurementSettings(duration=0.4)


def tcp_packet(dport, sport=40000, src="10.0.0.4", dst="10.0.0.3"):
    return Ipv4Packet(
        src=Ipv4Address(src),
        dst=Ipv4Address(dst),
        payload=TcpSegment(src_port=sport, dst_port=dport),
    )


class TestRulesetConstruction:
    def test_bandwidth_ruleset_depth(self):
        validator = FloodToleranceValidator(DeviceKind.EFW, FAST)
        for depth in (1, 8, 64):
            ruleset = validator.bandwidth_ruleset(depth)
            result = ruleset.evaluate(tcp_packet(5001), Direction.INBOUND)
            assert result.allowed and result.rules_traversed == depth

    def test_allowed_flood_shares_the_action_rule(self):
        validator = FloodToleranceValidator(DeviceKind.EFW, FAST)
        ruleset = validator.flood_ruleset(16, flood_allowed=True)
        flood = ruleset.evaluate(tcp_packet(5001, sport=4444), Direction.INBOUND)
        assert flood.allowed and flood.rules_traversed == 16

    def test_denied_flood_rule_at_depth_with_iperf_after(self):
        validator = FloodToleranceValidator(DeviceKind.EFW, FAST)
        ruleset = validator.flood_ruleset(16, flood_allowed=False)
        flood = ruleset.evaluate(tcp_packet(7777), Direction.INBOUND)
        assert not flood.allowed and flood.rules_traversed == 16
        iperf = ruleset.evaluate(tcp_packet(5001), Direction.INBOUND)
        assert iperf.allowed and iperf.rules_traversed == 17

    def test_action_rule_is_symmetric(self):
        validator = FloodToleranceValidator(DeviceKind.EFW, FAST)
        rule = validator.service_action_rule(5001)
        response = tcp_packet(40000, sport=5001, src="10.0.0.3", dst="10.0.0.4")
        assert rule.matches(response, Direction.OUTBOUND)


class TestBandwidthMeasurement:
    def test_standard_nic_baseline_near_line_rate(self):
        validator = FloodToleranceValidator(DeviceKind.STANDARD, FAST)
        measurement = validator.available_bandwidth(depth=1)
        assert measurement.mbps > 85

    def test_efw_bandwidth_decreases_with_depth(self):
        validator = FloodToleranceValidator(DeviceKind.EFW, FAST)
        shallow = validator.available_bandwidth(depth=1)
        deep = validator.available_bandwidth(depth=64)
        assert shallow.mbps > 85
        assert deep.mbps < shallow.mbps * 0.65

    def test_adf_slower_than_efw_at_depth(self):
        efw = FloodToleranceValidator(DeviceKind.EFW, FAST).available_bandwidth(depth=64)
        adf = FloodToleranceValidator(DeviceKind.ADF, FAST).available_bandwidth(depth=64)
        assert adf.mbps < efw.mbps

    def test_iptables_flat_at_depth_64(self):
        validator = FloodToleranceValidator(DeviceKind.IPTABLES, FAST)
        deep = validator.available_bandwidth(depth=64)
        assert deep.mbps > 85

    def test_vpg_measurement_uses_adf_on_both_ends(self):
        validator = FloodToleranceValidator(DeviceKind.ADF, FAST)
        measurement = validator.available_bandwidth(vpg_count=1)
        assert 10 < measurement.mbps < 70  # crypto-limited, but alive

    def test_vpg_requires_adf(self):
        validator = FloodToleranceValidator(DeviceKind.EFW, FAST)
        with pytest.raises(ValueError):
            validator.available_bandwidth(vpg_count=1)

    def test_additional_vpgs_nearly_free(self):
        validator = FloodToleranceValidator(DeviceKind.ADF, FAST)
        one = validator.available_bandwidth(vpg_count=1)
        four = validator.available_bandwidth(vpg_count=4)
        assert four.mbps > one.mbps * 0.8

    def test_repetitions_average(self):
        settings = MeasurementSettings(duration=0.3, repetitions=2)
        validator = FloodToleranceValidator(DeviceKind.STANDARD, settings)
        measurement = validator.available_bandwidth(depth=1)
        assert measurement.mbps > 85

    def test_flood_degrades_embedded_bandwidth(self):
        validator = FloodToleranceValidator(DeviceKind.EFW, FAST)
        clean = validator.bandwidth_under_flood(0)
        flooded = validator.bandwidth_under_flood(40000)
        assert flooded.mbps < clean.mbps * 0.5

    def test_flood_leaves_standard_nic_mostly_alone(self):
        validator = FloodToleranceValidator(DeviceKind.STANDARD, FAST)
        flooded = validator.bandwidth_under_flood(20000)
        assert flooded.mbps > 40

    def test_vpg_mss_constant_fits_mtu(self):
        # Sealed frame with VPG_MSS payload must not exceed 1518 bytes.
        from repro.crypto.keys import VpgKeyStore

        store = VpgKeyStore()
        context = store.context_for(1)
        inner = Ipv4Packet(
            src=Ipv4Address("10.0.0.2"),
            dst=Ipv4Address("10.0.0.3"),
            payload=TcpSegment(src_port=1, dst_port=2, payload_size=VPG_MSS),
        )
        outer = context.seal(inner, inner.src, inner.dst)
        assert 18 + outer.size <= 1518


class TestMinimumFloodRate:
    def test_efw_allow_deep_ruleset(self):
        validator = FloodToleranceValidator(DeviceKind.EFW, FAST)
        result = validator.minimum_flood_rate(64, flood_allowed=True, probe_duration=0.4)
        assert result.measurable
        assert 2000 < result.rate_pps < 12000

    def test_deny_roughly_doubles_allow(self):
        validator = FloodToleranceValidator(DeviceKind.ADF, FAST)
        allow = validator.minimum_flood_rate(64, flood_allowed=True, probe_duration=0.4)
        deny = validator.minimum_flood_rate(64, flood_allowed=False, probe_duration=0.4)
        assert allow.measurable and deny.measurable
        assert 1.4 < deny.rate_pps / allow.rate_pps < 3.0

    def test_efw_deny_reports_lockup(self):
        validator = FloodToleranceValidator(DeviceKind.EFW, FAST)
        result = validator.minimum_flood_rate(64, flood_allowed=False, probe_duration=0.4)
        assert result.lockup
        assert not result.measurable
        assert result.lockup_rate_pps <= 2000

    def test_deeper_rules_lower_the_bar(self):
        validator = FloodToleranceValidator(DeviceKind.EFW, FAST)
        shallow = validator.minimum_flood_rate(1, flood_allowed=True, probe_duration=0.4)
        deep = validator.minimum_flood_rate(64, flood_allowed=True, probe_duration=0.4)
        assert shallow.measurable and deep.measurable
        assert deep.rate_pps < shallow.rate_pps / 4


class TestHttpAndValidate:
    def test_http_depth_trend(self):
        settings = MeasurementSettings(http_duration=1.0)
        validator = FloodToleranceValidator(DeviceKind.ADF, settings)
        shallow = validator.http_performance(depth=1)
        deep = validator.http_performance(depth=64)
        assert deep.fetches_per_second < shallow.fetches_per_second
        assert deep.mean_connect_ms > shallow.mean_connect_ms

    def test_validation_report_flags_embedded_vulnerability(self):
        settings = MeasurementSettings(duration=0.3)
        validator = FloodToleranceValidator(DeviceKind.EFW, settings)
        report = validator.validate(depths=(1, 64))
        assert report.flood_vulnerable
        assert report.lockup_observed  # EFW deny probes wedge
        assert report.max_safe_depth == 1
        assert "Validation report" in report.summary()
