"""Tests for dynamic ARP and pcap export."""

import io

import pytest

from repro.net.addresses import BROADCAST_MAC, Ipv4Address, MacAddress
from repro.net.capture import CaptureTap
from repro.net.packet import (
    ETHERTYPE_ARP,
    ArpMessage,
    ArpOp,
    EthernetFrame,
    Ipv4Packet,
    UdpDatagram,
)
from repro.net.pcap import frame_to_wire_bytes, read_pcap_headers, write_pcap


class TestArpMessage:
    def test_roundtrip(self):
        message = ArpMessage(
            op=ArpOp.REQUEST,
            sender_mac=MacAddress.from_index(1),
            sender_ip=Ipv4Address("10.0.0.1"),
            target_mac=MacAddress(0),
            target_ip=Ipv4Address("10.0.0.2"),
        )
        parsed = ArpMessage.from_bytes(message.to_bytes())
        assert parsed == message
        assert parsed.size == 28

    def test_describe(self):
        message = ArpMessage(
            op=ArpOp.REQUEST,
            sender_mac=MacAddress.from_index(1),
            sender_ip=Ipv4Address("10.0.0.1"),
            target_mac=MacAddress(0),
            target_ip=Ipv4Address("10.0.0.2"),
        )
        assert "who-has 10.0.0.2" in message.describe()

    def test_truncated_rejected(self):
        with pytest.raises(ValueError):
            ArpMessage.from_bytes(b"\x00" * 10)


class TestDynamicArp:
    def _clear_static(self, net):
        for host in net.hosts.values():
            host.ip_layer.arp_table.clear()

    def test_resolution_round_trip_delivers_packet(self, mininet):
        alice, bob = mininet["alice"], mininet["bob"]
        self._clear_static(mininet)
        alice.enable_arp()
        bob.enable_arp()
        got = []
        bob.udp.bind(7000, lambda *args: got.append(args))
        sender = alice.udp.bind(0)
        sender.send(bob.ip, 7000, size=4)
        mininet.run(0.1)
        assert len(got) == 1
        assert alice.arp.requests_sent == 1
        assert bob.arp.replies_sent == 1
        assert alice.arp.lookup(bob.ip) == bob.mac

    def test_responder_learns_requester_address(self, mininet):
        alice, bob = mininet["alice"], mininet["bob"]
        self._clear_static(mininet)
        alice.enable_arp()
        bob.enable_arp()
        bob.udp.bind(7000, lambda *args: None)
        alice.udp.bind(0).send(bob.ip, 7000, size=4)
        mininet.run(0.1)
        # Gratuitous learning: bob can answer without its own request.
        assert bob.arp.lookup(alice.ip) == alice.mac
        assert bob.arp.requests_sent == 0

    def test_unresolvable_address_fails_after_retries(self, mininet):
        alice = mininet["alice"]
        self._clear_static(mininet)
        alice.enable_arp(retry_interval=0.1, max_retries=3)
        alice.udp.bind(0).send(Ipv4Address("192.168.1.99"), 7000, size=4)
        mininet.run(1.0)
        assert alice.arp.failures == 1
        assert alice.arp.packets_dropped_unresolved == 1
        assert alice.arp.requests_sent == 3

    def test_pending_queue_is_bounded(self, mininet):
        alice = mininet["alice"]
        self._clear_static(mininet)
        alice.enable_arp(queue_limit=4, retry_interval=5.0)
        sender = alice.udp.bind(0)
        for _ in range(10):
            sender.send(Ipv4Address("192.168.1.99"), 7000, size=4)
        assert alice.arp.packets_dropped_unresolved == 6

    def test_cache_expires(self, mininet):
        alice, bob = mininet["alice"], mininet["bob"]
        self._clear_static(mininet)
        alice.enable_arp(cache_timeout=0.5)
        bob.enable_arp()
        bob.udp.bind(7000, lambda *args: None)
        alice.udp.bind(0).send(bob.ip, 7000, size=4)
        mininet.run(0.1)
        assert alice.arp.lookup(bob.ip) is not None
        mininet.run(1.0)
        assert alice.arp.lookup(bob.ip) is None

    def test_static_entries_take_precedence(self, mininet):
        alice, bob = mininet["alice"], mininet["bob"]
        alice.enable_arp()
        got = []
        bob.udp.bind(7000, lambda *args: got.append(args))
        alice.udp.bind(0).send(bob.ip, 7000, size=4)
        mininet.run(0.1)
        assert len(got) == 1
        assert alice.arp.requests_sent == 0  # static table answered

    def test_arp_bypasses_firewall_nic(self, sim):
        # A deny-all EFW must still answer ARP, or nothing works at all.
        from tests.test_nic_models import build_pair
        from repro.nic.efw import EfwNic
        from repro.firewall.builders import deny_all

        alice, bob = build_pair(sim, lambda: EfwNic(sim, lockup_enabled=False))
        alice.ip_layer.arp_table.clear()
        bob.ip_layer.arp_table.clear()
        alice.enable_arp()
        bob.enable_arp()
        bob.nic.install_policy(deny_all())
        alice.udp.bind(0).send(bob.ip, 7000, size=4)
        sim.run(until=0.5)
        assert alice.arp.lookup(bob.ip) == bob.mac  # resolution worked
        assert bob.nic.rx_denied == 1  # the UDP packet itself was filtered


class TestPcap:
    def _capture_some_traffic(self, mininet):
        alice, bob = mininet["alice"], mininet["bob"]
        tap = CaptureTap()
        mininet.topology.link_for("bob").add_tap(tap)
        bob.udp.bind(7000, lambda *args: None)
        sender = alice.udp.bind(0)
        for index in range(3):
            sender.send(bob.ip, 7000, size=20 + index, data=b"payload")
        mininet.run(0.1)
        return tap

    def test_roundtrip_through_pcap_format(self, mininet):
        tap = self._capture_some_traffic(mininet)
        buffer = io.BytesIO()
        count = write_pcap(buffer, tap.frames)
        assert count == len(tap.frames)
        buffer.seek(0)
        records = read_pcap_headers(buffer)
        assert len(records) == count
        # Timestamps preserved to microsecond precision and ordered.
        times = [t for t, _data in records]
        assert times == sorted(times)
        assert times[0] == pytest.approx(tap.frames[0].time, abs=1e-5)

    def test_wire_bytes_parse_back_as_ip(self, mininet):
        tap = self._capture_some_traffic(mininet)
        wire = frame_to_wire_bytes(tap.frames[0].frame)
        # Ethernet header: dst, src, ethertype 0x0800, then IPv4.
        assert wire[12:14] == b"\x08\x00"
        parsed = Ipv4Packet.from_bytes(wire[14:])
        assert parsed.udp is not None
        assert parsed.udp.dst_port == 7000

    def test_minimum_frame_padding(self):
        frame = EthernetFrame(
            src_mac=MacAddress.from_index(1),
            dst_mac=MacAddress.from_index(2),
            payload=Ipv4Packet(
                src=Ipv4Address("10.0.0.1"),
                dst=Ipv4Address("10.0.0.2"),
                payload=UdpDatagram(1, 2),
            ),
        )
        assert len(frame_to_wire_bytes(frame)) == 60  # 64 minus 4-byte FCS

    def test_dump_tap_to_file(self, mininet, tmp_path):
        from repro.net.pcap import dump_tap

        tap = self._capture_some_traffic(mininet)
        path = tmp_path / "capture.pcap"
        count = dump_tap(tap, str(path))
        assert count == len(tap.frames)
        with open(path, "rb") as stream:
            assert len(read_pcap_headers(stream)) == count

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError):
            read_pcap_headers(io.BytesIO(b"\x00" * 24))

    def test_arp_frames_exportable(self, mininet):
        alice, bob = mininet["alice"], mininet["bob"]
        for host in mininet.hosts.values():
            host.ip_layer.arp_table.clear()
        alice.enable_arp()
        bob.enable_arp()
        tap = CaptureTap()
        mininet.topology.link_for("bob").add_tap(tap)
        bob.udp.bind(7000, lambda *args: None)
        alice.udp.bind(0).send(bob.ip, 7000, size=4)
        mininet.run(0.1)
        arp_frames = [
            captured
            for captured in tap.frames
            if captured.frame.ethertype == ETHERTYPE_ARP
        ]
        assert arp_frames
        wire = frame_to_wire_bytes(arp_frames[0].frame)
        parsed = ArpMessage.from_bytes(wire[14:])
        assert parsed.target_ip == bob.ip
