"""Property-based tests of the firewall matcher.

Random rule-sets and packets, checking the invariants everything else
leans on: cache transparency, symmetric-match involution, first-match
determinism, and traversal-count consistency.
"""

from hypothesis import given, strategies as st

from repro.firewall.rules import Action, AddressPattern, Direction, PortRange, Rule
from repro.firewall.ruleset import RuleSet
from repro.net.addresses import Ipv4Address
from repro.net.packet import IpProtocol, Ipv4Packet, TcpSegment, UdpDatagram

addresses = st.integers(0, (1 << 32) - 1).map(Ipv4Address)
ports = st.integers(0, 65535)
actions = st.sampled_from([Action.ALLOW, Action.DENY])
protocols = st.sampled_from([None, IpProtocol.TCP, IpProtocol.UDP])
directions = st.sampled_from([Direction.INBOUND, Direction.OUTBOUND])


@st.composite
def port_ranges(draw):
    low = draw(ports)
    high = draw(st.integers(low, 65535))
    return PortRange(low, high)


@st.composite
def patterns(draw):
    return AddressPattern(draw(addresses), draw(st.integers(0, 32)))


@st.composite
def rules(draw):
    return Rule(
        action=draw(actions),
        protocol=draw(protocols),
        src=draw(patterns()),
        dst=draw(patterns()),
        src_ports=draw(port_ranges()),
        dst_ports=draw(port_ranges()),
        symmetric=draw(st.booleans()),
    )


@st.composite
def packets(draw):
    protocol = draw(st.sampled_from([IpProtocol.TCP, IpProtocol.UDP]))
    if protocol == IpProtocol.TCP:
        payload = TcpSegment(src_port=draw(ports), dst_port=draw(ports))
    else:
        payload = UdpDatagram(src_port=draw(ports), dst_port=draw(ports))
    return Ipv4Packet(src=draw(addresses), dst=draw(addresses), payload=payload)


class TestMatcherProperties:
    @given(rule_list=st.lists(rules(), max_size=10), packet=packets(), direction=directions)
    def test_cache_transparency(self, rule_list, packet, direction):
        # The memoised evaluation must agree with the uncached walk.
        ruleset = RuleSet(rule_list)
        cached = ruleset.evaluate(packet, direction)
        fresh = ruleset.evaluate_linear(packet, direction)
        assert cached.action == fresh.action
        assert cached.rules_traversed == fresh.rules_traversed
        assert cached.rule is fresh.rule

    @given(rule=rules(), packet=packets(), direction=directions)
    def test_symmetric_match_is_an_involution(self, rule, packet, direction):
        # A symmetric rule matches a packet iff it matches the mirrored
        # packet (endpoints swapped).
        if not rule.symmetric:
            return
        mirrored_payload = type(packet.payload)(
            src_port=packet.flow()[4], dst_port=packet.flow()[2]
        )
        mirrored = Ipv4Packet(src=packet.dst, dst=packet.src, payload=mirrored_payload)
        assert rule.matches(packet, direction) == rule.matches(mirrored, direction)

    @given(rule_list=st.lists(rules(), max_size=10), packet=packets(), direction=directions)
    def test_first_match_consistency(self, rule_list, packet, direction):
        # The reported rule is the first matching one, and the traversal
        # count equals the entry depth of that rule (or the full table).
        ruleset = RuleSet(rule_list)
        result = ruleset.evaluate(packet, direction)
        depth = 0
        for rule in rule_list:
            depth += rule.rule_cost
            if rule.matches(packet, direction):
                assert result.rule is rule
                assert result.rules_traversed == depth
                return
        assert result.rule is None
        assert result.action == ruleset.default_action
        assert result.rules_traversed == max(depth, 1)

    @given(rule_list=st.lists(rules(), max_size=8), packet=packets())
    def test_verdict_is_deterministic(self, rule_list, packet):
        ruleset_a = RuleSet(rule_list)
        ruleset_b = RuleSet(rule_list)
        first = ruleset_a.evaluate(packet, Direction.INBOUND)
        second = ruleset_b.evaluate(packet, Direction.INBOUND)
        assert first.action == second.action
        assert first.rules_traversed == second.rules_traversed

    @given(
        rule_list=st.lists(rules(), min_size=1, max_size=8),
        packet=packets(),
        direction=directions,
        insert_at=st.integers(0, 8),
    )
    def test_appending_nonmatching_rule_never_changes_verdict(
        self, rule_list, packet, direction, insert_at
    ):
        # Adding a rule that does not match the packet can change the
        # traversal count but never the verdict of the first match...
        ruleset = RuleSet(rule_list)
        before = ruleset.evaluate(packet, direction)
        non_matching = Rule(
            action=Action.DENY,
            protocol=IpProtocol.TCP,
            src=AddressPattern.host(Ipv4Address("203.0.113.250")),
            dst=AddressPattern.host(Ipv4Address("203.0.113.251")),
            src_ports=PortRange.single(1),
            dst_ports=PortRange.single(1),
        )
        if non_matching.matches(packet, direction):
            return  # astronomically unlikely, but guard anyway
        position = min(insert_at, len(rule_list))
        with ruleset.mutate() as edit:
            edit.insert(position, non_matching)
        after = ruleset.evaluate(packet, direction)
        assert after.action == before.action
        assert after.rule is before.rule
