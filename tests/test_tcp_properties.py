"""Property-based TCP tests: stream integrity under arbitrary loss.

The single most important invariant in the transport: whatever the
network drops, the receiving application sees exactly the bytes that
were written, in order, or the connection fails — never silent loss,
duplication or reordering.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.host.host import Host
from repro.net.addresses import Ipv4Address, MacAddress
from repro.net.topology import StarTopology
from repro.nic.standard import StandardNic
from repro.sim.engine import Simulator
from repro.sim.rng import RngRegistry


def build_net():
    sim = Simulator()
    rng = RngRegistry(99)
    topo = StarTopology(sim)
    hosts = []
    for index, name in enumerate(["alice", "bob"], start=1):
        host = Host(sim, name, Ipv4Address(f"10.9.0.{index}"), MacAddress.from_index(index), rng)
        nic = StandardNic(sim)
        nic.attach(topo.add_station(name))
        host.attach_nic(nic)
        hosts.append(host)
    for a in hosts:
        for b in hosts:
            if a is not b:
                a.ip_layer.arp_table[b.ip] = b.mac
    return sim, hosts[0], hosts[1]


class BernoulliDropper:
    """Drops TCP data frames by a seeded pseudo-random coin."""

    def __init__(self, nic, drop_probability: float, seed: int):
        import random

        self.random = random.Random(seed)
        self.drop_probability = drop_probability
        self.dropped = 0
        self._original = nic.receive_frame
        nic.receive_frame = self._filter

    def _filter(self, frame, port):
        packet = frame.ip
        if (
            packet is not None
            and packet.tcp is not None
            and packet.tcp.payload_size
            and self.random.random() < self.drop_probability
        ):
            self.dropped += 1
            return
        self._original(frame, port)


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    drop_probability=st.floats(min_value=0.0, max_value=0.25),
    seed=st.integers(0, 2**16),
    chunks=st.lists(
        st.tuples(st.integers(1, 20_000), st.binary(max_size=24)),
        min_size=1,
        max_size=6,
    ),
)
def test_stream_integrity_under_random_loss(drop_probability, seed, chunks):
    sim, alice, bob = build_net()
    received_sizes = []
    received_bytes = bytearray()

    def on_accept(conn):
        def on_data(c, data, size):
            received_sizes.append(size)
            received_bytes.extend(data)

        conn.on_data = on_data

    bob.tcp.listen(5001, on_accept)
    dropper = BernoulliDropper(bob.nic, drop_probability, seed)
    conn = alice.tcp.connect(bob.ip, 5001)

    total = sum(max(size, len(data)) for size, data in chunks)
    real_prefix_order = [data for _size, data in chunks if data]

    def on_connected(c):
        for size, data in chunks:
            c.send(max(size, len(data)), data)

    conn.on_connected = on_connected
    # Virtual time is free: leave generous headroom so an unlucky run of
    # drops deep in RTO exponential backoff still completes (25% loss on
    # a ~26 kB stream can push the tail retransmit well past 30 s).
    sim.run(until=300.0)

    assert sum(received_sizes) == total
    # All real bytes arrive, in write order, at their exact offsets: the
    # reassembled real-byte stream is the concatenation of the chunks'
    # real prefixes (each chunk's data sits at its chunk start).
    cursor = 0
    stream = bytes(received_bytes)
    for data in real_prefix_order:
        index = stream.find(data, cursor)
        assert index != -1
        cursor = index + len(data)


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 2**16))
def test_half_close_under_loss_still_delivers_eof(seed):
    sim, alice, bob = build_net()
    events = []

    def on_accept(conn):
        conn.on_data = lambda c, data, size: events.append(size)

    bob.tcp.listen(5001, on_accept)
    BernoulliDropper(bob.nic, 0.15, seed)
    conn = alice.tcp.connect(bob.ip, 5001)

    def on_connected(c):
        c.send(30_000)
        c.close()

    conn.on_connected = on_connected
    sim.run(until=60.0)
    assert sum(events) == 30_000
    assert events[-1] == 0  # EOF delivered exactly once, last
    assert events.count(0) == 1
