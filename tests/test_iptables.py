"""Tests for the iptables host-firewall model."""

import pytest

from repro import calibration
from repro.firewall.builders import allow_all, deny_all, padded_ruleset
from repro.firewall.iptables import IptablesFilter
from repro.firewall.rules import Action, Direction, PortRange, Rule
from repro.firewall.ruleset import RuleSet
from repro.net.packet import IpProtocol


def udp_to(host, target, port, size=10):
    from repro.net.packet import Ipv4Packet, UdpDatagram

    packet = Ipv4Packet(
        src=host.ip, dst=target.ip, payload=UdpDatagram(4000, port, payload_size=size)
    )
    host.ip_layer.send_packet(packet)


class TestIptablesFiltering:
    def test_allowed_traffic_delivered(self, mininet):
        alice, bob = mininet["alice"], mininet["bob"]
        bob.install_iptables(IptablesFilter(mininet.sim, input_chain=allow_all()))
        got = []
        bob.udp.bind(7000, lambda *args: got.append(args))
        udp_to(alice, bob, 7000)
        mininet.run(0.1)
        assert len(got) == 1
        assert bob.iptables.accepted_in == 1

    def test_denied_traffic_dropped(self, mininet):
        alice, bob = mininet["alice"], mininet["bob"]
        bob.install_iptables(IptablesFilter(mininet.sim, input_chain=deny_all()))
        got = []
        bob.udp.bind(7000, lambda *args: got.append(args))
        udp_to(alice, bob, 7000)
        mininet.run(0.1)
        assert got == []
        assert bob.iptables.dropped_in == 1

    def test_output_chain_filters_egress(self, mininet):
        alice, bob = mininet["alice"], mininet["bob"]
        output_deny = RuleSet(
            [Rule(action=Action.DENY, protocol=IpProtocol.UDP)],
            default_action=Action.ALLOW,
        )
        bob.install_iptables(
            IptablesFilter(mininet.sim, input_chain=allow_all(), output_chain=output_deny)
        )
        got = []
        alice.udp.bind(7000, lambda *args: got.append(args))
        sock = bob.udp.bind(0)
        sock.send(alice.ip, 7000, size=4)
        mininet.run(0.1)
        assert got == []
        assert bob.iptables.dropped_out == 1

    def test_default_output_chain_allows(self, mininet):
        alice, bob = mininet["alice"], mininet["bob"]
        bob.install_iptables(IptablesFilter(mininet.sim, input_chain=allow_all()))
        got = []
        alice.udp.bind(7000, lambda *args: got.append(args))
        sock = bob.udp.bind(0)
        sock.send(alice.ip, 7000, size=4)
        mininet.run(0.1)
        assert len(got) == 1

    def test_depth_costs_host_cpu_time(self, mininet):
        alice, bob = mininet["alice"], mininet["bob"]
        deep = padded_ruleset(64, action_rule=Rule(action=Action.ALLOW))
        filt = IptablesFilter(mininet.sim, input_chain=deep)
        bob.install_iptables(filt)
        bob.udp.bind(7000, lambda *args: None)
        for _ in range(100):
            udp_to(alice, bob, 7000)
        mininet.run(0.5)
        expected_min = 100 * calibration.IPTABLES_COST_MODEL.service_time(38, 64)
        assert filt.utilisation_time >= expected_min * 0.9

    def test_backlog_bound_drops(self, mininet):
        alice, bob = mininet["alice"], mininet["bob"]
        slow_model = calibration.NicCostModel(c0=0.01, c_rule=0, c_byte=0)
        filt = IptablesFilter(
            mininet.sim, input_chain=allow_all(), cost_model=slow_model, backlog=4
        )
        bob.install_iptables(filt)
        bob.udp.bind(7000, lambda *args: None)
        for _ in range(50):
            udp_to(alice, bob, 7000)
        mininet.run(1.0)
        assert filt.dropped_backlog > 0

    def test_iptables_is_orders_of_magnitude_cheaper_than_nic(self):
        nic_cost = calibration.EFW_COST_MODEL.service_time(64, 64)
        host_cost = calibration.IPTABLES_COST_MODEL.service_time(64, 64)
        assert nic_cost / host_cost > 20
