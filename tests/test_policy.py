"""Tests for the policy server, NIC agents, VPG groups and audit trail."""

import pytest

from repro.firewall.builders import allow_all, deny_all
from repro.net.addresses import Ipv4Address
from repro.net.packet import IpProtocol
from repro.nic.efw import EfwNic
from repro.policy.audit import AuditEventKind, AuditLog
from repro.policy.groups import VpgGroupManager
from repro.policy.server import NicAgent, PolicyServer


@pytest.fixture
def policy_net(mininet):
    """alice runs the policy server; bob carries an EFW with an agent."""
    alice, bob = mininet["alice"], mininet["bob"]
    # Swap bob's NIC for an EFW.
    efw = EfwNic(mininet.sim, lockup_enabled=False)
    port = bob.nic.port
    port.device = None
    efw.attach(port)
    bob.nic = None
    bob.attach_nic(efw)
    server = PolicyServer(alice)
    agent = NicAgent(bob, efw)
    server.register_agent(agent)
    return mininet, server, agent, bob


class TestPolicyServer:
    def test_define_and_lookup(self, policy_net):
        _, server, _, _ = policy_net
        server.define_policy("p", allow_all())
        assert server.policy("p").table_size == 1
        with pytest.raises(KeyError):
            server.policy("missing")

    def test_inline_push_installs_policy(self, policy_net):
        _, server, agent, bob = policy_net
        server.define_policy("p", allow_all())
        server.assign("bob", "p")
        server.push_policy("bob", inline=True)
        assert bob.nic.policy is not None
        assert agent.installs == 1
        assert server.pushes_acked == 1

    def test_networked_push_travels_as_udp(self, policy_net):
        mininet, server, agent, bob = policy_net
        server.define_policy("p", deny_all())
        server.assign("bob", "p")
        server.push_policy("bob", inline=False)
        assert bob.nic.policy is None  # not yet delivered
        mininet.run(0.1)
        assert bob.nic.policy is not None
        assert server.pushes_acked == 1
        events = server.audit.events(kind=AuditEventKind.POLICY_PUSHED)
        assert events and events[0].details["transport"] == "udp"

    def test_assign_requires_known_policy_and_agent(self, policy_net):
        _, server, _, _ = policy_net
        with pytest.raises(KeyError):
            server.assign("bob", "missing")
        server.define_policy("p", allow_all())
        server.assign("bob", "p")
        with pytest.raises(KeyError):
            server.push_policy("charlie")

    def test_push_without_assignment_rejected(self, policy_net):
        _, server, _, _ = policy_net
        with pytest.raises(KeyError):
            server.push_policy("bob")

    def test_push_all(self, policy_net):
        _, server, _, bob = policy_net
        server.define_policy("p", allow_all())
        server.assign("bob", "p")
        server.push_all(inline=True)
        assert bob.nic.policy is not None

    def test_audit_records_lifecycle(self, policy_net):
        _, server, _, _ = policy_net
        server.define_policy("p", allow_all())
        server.assign("bob", "p")
        server.push_policy("bob", inline=True)
        kinds = [event.kind for event in server.audit.events()]
        assert kinds == [
            AuditEventKind.POLICY_DEFINED,
            AuditEventKind.POLICY_ASSIGNED,
            AuditEventKind.POLICY_PUSHED,
        ]

    def test_agent_restart_delegates_to_nic(self, policy_net):
        _, _, agent, bob = policy_net
        agent.restart()
        assert bob.nic.agent_restarts == 1


class TestRetryingPush:
    @pytest.fixture
    def assigned(self, policy_net):
        mininet, server, agent, bob = policy_net
        server.define_policy("p", deny_all())
        server.assign("bob", "p")
        return mininet, server, agent, bob

    def test_default_push_stays_fire_and_forget(self, assigned):
        mininet, server, _, _ = assigned
        server.push_policy("bob", inline=False)
        assert server._awaiting_ack == {}
        mininet.run(0.1)
        assert server.pushes_acked == 1
        assert server.pushes_retried == 0

    def test_lost_push_is_resent_and_acked(self, assigned):
        mininet, server, _, bob = assigned
        real_send = server._send_push_datagram
        sends = []

        def lossy(agent, policy_name, ruleset):
            sends.append(policy_name)
            if len(sends) == 1:
                return  # first datagram lost on the wire
            real_send(agent, policy_name, ruleset)

        server._send_push_datagram = lossy
        server.push_policy("bob", inline=False, retries=2, ack_timeout=0.05)
        mininet.run(0.5)
        assert bob.nic.policy is not None
        assert sends == ["p", "p"]
        assert server.pushes_retried == 1
        assert server.pushes_acked == 1
        assert server.pushes_failed == 0
        retried = server.audit.events(kind=AuditEventKind.PUSH_RETRIED)
        assert len(retried) == 1 and retried[0].subject == "bob"
        assert server._awaiting_ack == {}

    def test_retries_exhausted_records_failure(self, assigned):
        mininet, server, _, bob = assigned
        sends = []
        server._send_push_datagram = lambda agent, name, ruleset: sends.append(name)
        server.push_policy("bob", inline=False, retries=2, ack_timeout=0.05)
        mininet.run(0.5)
        assert bob.nic.policy is None
        assert sends == ["p", "p", "p"]  # original + 2 retries
        assert server.pushes_retried == 2
        assert server.pushes_failed == 1
        assert server.pushes_acked == 0
        failed = server.audit.events(kind=AuditEventKind.PUSH_FAILED)
        assert len(failed) == 1 and failed[0].subject == "bob"
        assert server._awaiting_ack == {}

    def test_retries_require_ack_timeout(self, assigned):
        _, server, _, _ = assigned
        with pytest.raises(ValueError, match="ack_timeout"):
            server.push_policy("bob", inline=False, retries=1)


class TestAuditLog:
    def test_filtering(self):
        log = AuditLog()
        log.record(1.0, AuditEventKind.POLICY_DEFINED, "a")
        log.record(2.0, AuditEventKind.POLICY_PUSHED, "b", policy="p")
        assert len(log) == 2
        assert len(log.events(kind=AuditEventKind.POLICY_PUSHED)) == 1
        assert len(log.events(subject="a")) == 1

    def test_str_rendering(self):
        log = AuditLog()
        log.record(1.5, AuditEventKind.VPG_CREATED, "group-x", vpg_id=3)
        assert "vpg-created group-x vpg_id=3" in str(log.events()[0])


class TestVpgGroups:
    def test_create_and_lookup(self):
        manager = VpgGroupManager()
        group = manager.create_group("sensors", protocol=IpProtocol.UDP, port=7000)
        assert manager.group("sensors") is group
        assert len(manager) == 1

    def test_duplicate_name_rejected(self):
        manager = VpgGroupManager()
        manager.create_group("g")
        with pytest.raises(ValueError):
            manager.create_group("g")

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            VpgGroupManager().group("nope")

    def test_ids_are_unique_and_increasing(self):
        manager = VpgGroupManager(first_id=10)
        a = manager.create_group("a")
        b = manager.create_group("b")
        assert (a.vpg_id, b.vpg_id) == (10, 11)

    def test_membership_and_groups_for(self):
        manager = VpgGroupManager()
        group_a = manager.create_group("a")
        group_b = manager.create_group("b")
        member = Ipv4Address("10.0.0.5")
        manager.add_member(group_a, member)
        manager.add_member(group_b, member)
        assert [group.name for group in manager.groups_for(member)] == ["a", "b"]

    def test_rule_for_member(self):
        manager = VpgGroupManager()
        group = manager.create_group("web", protocol=IpProtocol.TCP, port=443)
        member = Ipv4Address("10.0.0.5")
        manager.add_member(group, member)
        rule = group.rule_for_member(member)
        assert rule.vpg_id == group.vpg_id
        assert rule.dst_ports.contains(443)
        assert rule.symmetric

    def test_rule_for_non_member_rejected(self):
        manager = VpgGroupManager()
        group = manager.create_group("web")
        with pytest.raises(ValueError):
            group.rule_for_member(Ipv4Address("10.0.0.5"))
