"""Tests for links, the learning switch, topology and capture taps."""

import pytest

from repro.net.addresses import BROADCAST_MAC, Ipv4Address, MacAddress
from repro.net.capture import CaptureTap
from repro.net.link import Link
from repro.net.packet import EthernetFrame, Ipv4Packet, RawPayload, UdpDatagram
from repro.net.switch import EthernetSwitch
from repro.net.topology import StarTopology
from repro.sim import units


class Sink:
    """Collects delivered frames with timestamps."""

    def __init__(self, sim):
        self.sim = sim
        self.frames = []

    def receive_frame(self, frame, port):
        self.frames.append((self.sim.now, frame))


def make_frame(src_index=1, dst_index=2, payload_size=100):
    packet = Ipv4Packet(
        src=Ipv4Address("10.0.0.1"),
        dst=Ipv4Address("10.0.0.2"),
        payload=UdpDatagram(src_port=1, dst_port=2, payload_size=payload_size),
    )
    return EthernetFrame(
        src_mac=MacAddress.from_index(src_index),
        dst_mac=MacAddress.from_index(dst_index),
        payload=packet,
    )


class TestLink:
    def test_delivery_includes_serialization_and_propagation(self, sim):
        link = Link(sim, bandwidth_bps=units.mbps(100), propagation_delay=1e-6)
        sink = Sink(sim)
        link.port_b.attach(sink)
        frame = make_frame()
        link.port_a.send(frame)
        sim.run()
        wire_bytes = frame.wire_size + units.ETHERNET_WIRE_OVERHEAD
        expected = wire_bytes * 8 / 100e6 + 1e-6
        assert sink.frames[0][0] == pytest.approx(expected)

    def test_frames_deliver_in_fifo_order(self, sim):
        link = Link(sim)
        sink = Sink(sim)
        link.port_b.attach(sink)
        frames = [make_frame(payload_size=size) for size in (10, 500, 30)]
        for frame in frames:
            link.port_a.send(frame)
        sim.run()
        assert [f for _, f in sink.frames] == frames

    def test_queue_overflow_drops_and_counts(self, sim):
        link = Link(sim, queue_capacity=4)
        sink = Sink(sim)
        link.port_b.attach(sink)
        accepted = sum(link.port_a.send(make_frame()) for _ in range(20))
        sim.run()
        # One in service + 4 queued accepted at offer time.
        assert accepted == 5
        assert link.port_a.dropped_frames == 15
        assert len(sink.frames) == 5

    def test_full_duplex_directions_are_independent(self, sim):
        link = Link(sim)
        sink_a, sink_b = Sink(sim), Sink(sim)
        link.port_a.attach(sink_a)
        link.port_b.attach(sink_b)
        link.port_a.send(make_frame())
        link.port_b.send(make_frame())
        sim.run()
        assert len(sink_a.frames) == 1
        assert len(sink_b.frames) == 1

    def test_counters(self, sim):
        link = Link(sim)
        sink = Sink(sim)
        link.port_b.attach(sink)
        frame = make_frame()
        link.port_a.send(frame)
        sim.run()
        assert link.port_a.tx_frames == 1
        assert link.port_a.tx_bytes == frame.wire_size
        assert link.port_b.rx_frames == 1

    def test_double_attach_rejected(self, sim):
        link = Link(sim)
        link.port_a.attach(Sink(sim))
        with pytest.raises(RuntimeError):
            link.port_a.attach(Sink(sim))

    def test_invalid_parameters_rejected(self, sim):
        with pytest.raises(ValueError):
            Link(sim, bandwidth_bps=0)
        with pytest.raises(ValueError):
            Link(sim, propagation_delay=-1)


class TestSwitch:
    def _wire(self, sim, count=3):
        switch = EthernetSwitch(sim)
        sinks = []
        for index in range(count):
            link = Link(sim, name=f"l{index}")
            switch.attach_port(link.port_a)
            sink = Sink(sim)
            link.port_b.attach(sink)
            sinks.append((link, sink))
        return switch, sinks

    def test_unknown_destination_floods(self, sim):
        switch, sinks = self._wire(sim)
        sinks[0][0].port_b.send(make_frame(src_index=1, dst_index=9))
        sim.run()
        assert len(sinks[1][1].frames) == 1
        assert len(sinks[2][1].frames) == 1
        assert len(sinks[0][1].frames) == 0  # never reflected to ingress
        assert switch.flooded_frames == 1

    def test_learned_destination_is_unicast(self, sim):
        switch, sinks = self._wire(sim)
        # Host 2 speaks first so the switch learns its port.
        sinks[1][0].port_b.send(make_frame(src_index=2, dst_index=1))
        sim.run()
        sinks[0][0].port_b.send(make_frame(src_index=1, dst_index=2))
        sim.run()
        assert len(sinks[1][1].frames) == 1
        assert len(sinks[2][1].frames) == 1  # only the initial flood
        assert switch.forwarded_frames == 1

    def test_broadcast_floods_all_but_ingress(self, sim):
        switch, sinks = self._wire(sim)
        packet = Ipv4Packet(
            src=Ipv4Address("10.0.0.1"),
            dst=Ipv4Address("255.255.255.255"),
            payload=UdpDatagram(1, 2),
        )
        frame = EthernetFrame(
            src_mac=MacAddress.from_index(1), dst_mac=BROADCAST_MAC, payload=packet
        )
        sinks[0][0].port_b.send(frame)
        sim.run()
        assert len(sinks[1][1].frames) == 1
        assert len(sinks[2][1].frames) == 1

    def test_frame_to_ingress_segment_not_forwarded(self, sim):
        switch, sinks = self._wire(sim)
        # Learn both hosts on port 0's segment (hub-like scenario).
        sinks[0][0].port_b.send(make_frame(src_index=1, dst_index=9))
        sim.run()
        sinks[0][0].port_b.send(make_frame(src_index=9, dst_index=1))
        sim.run()
        # src 9 and dst 1 are both behind port 0 now.
        before = [len(s.frames) for _, s in sinks]
        sinks[0][0].port_b.send(make_frame(src_index=9, dst_index=1))
        sim.run()
        after = [len(s.frames) for _, s in sinks]
        assert before == after  # nothing delivered anywhere

    def test_mac_ageing_causes_reflood(self, sim):
        switch = EthernetSwitch(sim, mac_ageing_time=0.5)
        links = []
        for index in range(3):
            link = Link(sim, name=f"l{index}")
            switch.attach_port(link.port_a)
            sink = Sink(sim)
            link.port_b.attach(sink)
            links.append((link, sink))
        links[1][0].port_b.send(make_frame(src_index=2, dst_index=1))
        sim.run()
        # After the ageing time, the entry for host 2 is stale.
        sim.schedule(1.0, lambda: links[0][0].port_b.send(make_frame(src_index=1, dst_index=2)))
        sim.run()
        assert len(links[2][1].frames) >= 2  # initial flood + re-flood

    def test_drop_counting_on_egress_overflow(self, sim):
        # Two ingress ports converging on one same-speed egress port: the
        # 2-frame egress queue must overflow and the switch must count it.
        switch = EthernetSwitch(sim)
        ingress_1 = Link(sim, name="in1")
        ingress_2 = Link(sim, name="in2")
        egress = Link(sim, name="out", queue_capacity=2)
        for link in (ingress_1, ingress_2, egress):
            switch.attach_port(link.port_a)
        sink = Sink(sim)
        egress.port_b.attach(sink)
        # Teach the switch where dst 3 lives.
        egress.port_b.send(make_frame(src_index=3, dst_index=1))
        sim.run()
        for _ in range(30):
            ingress_1.port_b.send(make_frame(src_index=1, dst_index=3, payload_size=1400))
            ingress_2.port_b.send(make_frame(src_index=2, dst_index=3, payload_size=1400))
        sim.run()
        assert switch.dropped_frames > 0
        assert len(sink.frames) < 60

    def test_mac_table_snapshot(self, sim):
        switch, sinks = self._wire(sim)
        sinks[0][0].port_b.send(make_frame(src_index=1, dst_index=2))
        sim.run()
        table = switch.mac_table()
        assert MacAddress.from_index(1) in table


class TestTopology:
    def test_star_connects_stations(self, sim):
        topo = StarTopology(sim)
        port_a = topo.add_station("a")
        port_b = topo.add_station("b")
        sink_a, sink_b = Sink(sim), Sink(sim)
        port_a.attach(sink_a)
        port_b.attach(sink_b)
        port_a.send(make_frame(src_index=1, dst_index=2))
        sim.run()
        assert len(sink_b.frames) == 1

    def test_duplicate_station_rejected(self, sim):
        topo = StarTopology(sim)
        topo.add_station("a")
        with pytest.raises(ValueError):
            topo.add_station("a")

    def test_station_names_and_links(self, sim):
        topo = StarTopology(sim)
        topo.add_station("x")
        topo.add_station("y")
        assert topo.station_names() == ["x", "y"]
        assert topo.link_for("x").name.endswith(".x")


class TestCaptureTap:
    def test_tap_records_frames_with_direction(self, sim):
        link = Link(sim)
        tap = CaptureTap()
        link.add_tap(tap)
        sink = Sink(sim)
        link.port_b.attach(sink)
        link.port_a.send(make_frame())
        sim.run()
        assert tap.total_frames == 1
        assert tap.frames[0].dst_port_name == link.port_b.name

    def test_filter_excludes_frames(self, sim):
        link = Link(sim)
        tap = CaptureTap(frame_filter=lambda frame: frame.wire_size > 1000)
        link.add_tap(tap)
        link.port_b.attach(Sink(sim))
        link.port_a.send(make_frame(payload_size=10))
        link.port_a.send(make_frame(payload_size=1400))
        sim.run()
        assert tap.total_frames == 1

    def test_window_queries_and_rate(self, sim):
        link = Link(sim)
        tap = CaptureTap()
        link.add_tap(tap)
        link.port_b.attach(Sink(sim))
        for delay in (0.1, 0.2, 0.9):
            sim.schedule(delay, link.port_a.send, make_frame())
        sim.run()
        assert len(tap.frames_between(0.0, 0.5)) == 2
        assert tap.rate_pps(0.0, 1.0) == pytest.approx(3.0)

    def test_rate_rejects_bad_window(self):
        tap = CaptureTap()
        with pytest.raises(ValueError):
            tap.rate_pps(1.0, 1.0)

    def test_clear(self, sim):
        link = Link(sim)
        tap = CaptureTap()
        link.add_tap(tap)
        link.port_b.attach(Sink(sim))
        link.port_a.send(make_frame())
        sim.run()
        tap.clear()
        assert tap.total_frames == 0
        assert len(tap) == 0
