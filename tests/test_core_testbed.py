"""Tests for the Figure 1 testbed builder."""

import pytest

from repro.core.testbed import STATIONS, DeviceKind, Testbed
from repro.firewall.builders import allow_all, deny_all
from repro.nic.adf import AdfNic
from repro.nic.efw import EfwNic
from repro.nic.standard import StandardNic


class TestConstruction:
    def test_four_stations_exist(self):
        bed = Testbed()
        assert set(bed.hosts) == set(STATIONS)
        assert bed.client.name == "client"
        assert bed.target.name == "target"
        assert bed.attacker.name == "attacker"

    def test_all_hosts_have_arp_entries(self):
        bed = Testbed()
        for a in bed.hosts.values():
            for b in bed.hosts.values():
                if a is not b:
                    assert a.ip_layer.resolve(b.ip) == b.mac

    @pytest.mark.parametrize(
        "device,nic_type",
        [
            (DeviceKind.STANDARD, StandardNic),
            (DeviceKind.EFW, EfwNic),
            (DeviceKind.ADF, AdfNic),
            (DeviceKind.IPTABLES, StandardNic),
        ],
    )
    def test_target_nic_matches_device(self, device, nic_type):
        bed = Testbed(device=device)
        assert isinstance(bed.target.nic, nic_type)

    def test_client_device_option(self):
        bed = Testbed(device=DeviceKind.ADF, client_device=DeviceKind.ADF)
        assert isinstance(bed.client.nic, AdfNic)
        assert "client" in bed.agents

    def test_is_embedded_classification(self):
        assert DeviceKind.EFW.is_embedded
        assert DeviceKind.ADF.is_embedded
        assert not DeviceKind.STANDARD.is_embedded
        assert not DeviceKind.IPTABLES.is_embedded

    def test_ring_size_option_applies(self):
        bed = Testbed(device=DeviceKind.EFW, ring_size=16)
        assert bed.target.nic.processor.capacity == 16

    def test_lockup_ablation_option(self):
        bed = Testbed(device=DeviceKind.EFW, efw_lockup_enabled=False)
        assert not bed.target.nic.fault.enabled


class TestPolicyInstallation:
    def test_embedded_install_goes_through_policy_server(self):
        bed = Testbed(device=DeviceKind.EFW)
        bed.install_target_policy(allow_all())
        assert bed.target.nic.policy is not None
        assert bed.policy_server.pushes_acked == 1

    def test_networked_push_delivers_over_the_wire(self):
        bed = Testbed(device=DeviceKind.EFW)
        bed.install_target_policy(allow_all(), networked_push=True)
        assert bed.target.nic.policy is not None
        # The push consumed real simulated time and traffic.
        assert bed.sim.now > 0
        assert bed.policy_server.pushes_acked == 1

    def test_iptables_install(self):
        bed = Testbed(device=DeviceKind.IPTABLES)
        bed.install_target_policy(deny_all())
        assert bed.target.iptables is not None

    def test_standard_install_is_noop(self):
        bed = Testbed(device=DeviceKind.STANDARD)
        bed.install_target_policy(deny_all())
        assert bed.target.iptables is None

    def test_client_policy_requires_embedded_client(self):
        bed = Testbed(device=DeviceKind.ADF)
        with pytest.raises(RuntimeError):
            bed.install_client_policy(allow_all())

    def test_restart_agent_requires_embedded_target(self):
        bed = Testbed(device=DeviceKind.STANDARD)
        with pytest.raises(RuntimeError):
            bed.restart_target_agent()

    def test_restart_agent_works(self):
        bed = Testbed(device=DeviceKind.EFW)
        bed.restart_target_agent()
        assert bed.target.nic.agent_restarts == 1

    def test_run_advances_clock(self):
        bed = Testbed()
        bed.run(0.5)
        assert bed.sim.now == pytest.approx(0.5)

    def test_seed_determinism(self):
        def measure(seed):
            from repro.apps.iperf import IperfClient, IperfServer

            bed = Testbed(device=DeviceKind.EFW, seed=seed)
            bed.install_target_policy(allow_all())
            IperfServer(bed.target)
            session = IperfClient(bed.client).start_tcp(bed.target.ip, duration=0.2)
            bed.run(0.25)
            return session.result().bytes_transferred

        assert measure(7) == measure(7)
