"""Tests for TCP connection lifecycle over the simulated network."""

import pytest

from repro.host.tcp import TcpState


def start_echo_listener(host, port=5001, sink=None):
    """Listen and collect received bytes into ``sink`` (a list)."""
    accepted = []

    def on_accept(conn):
        accepted.append(conn)
        if sink is not None:
            conn.on_data = lambda c, data, size: sink.append((data, size))

    host.tcp.listen(port, on_accept)
    return accepted


class TestHandshake:
    def test_connect_establishes_both_ends(self, mininet):
        alice, bob = mininet["alice"], mininet["bob"]
        accepted = start_echo_listener(bob)
        conn = alice.tcp.connect(bob.ip, 5001)
        done = []
        conn.on_connected = lambda c: done.append(mininet.sim.now)
        mininet.run(1.0)
        assert done and done[0] < 0.01  # LAN handshake is sub-10ms
        assert conn.state == TcpState.ESTABLISHED
        assert accepted[0].state == TcpState.ESTABLISHED

    def test_connect_to_closed_port_is_refused(self, mininet):
        alice, bob = mininet["alice"], mininet["bob"]
        conn = alice.tcp.connect(bob.ip, 9999)
        refused = []
        conn.on_refused = lambda c: refused.append(True)
        mininet.run(1.0)
        assert refused
        assert conn.state == TcpState.CLOSED
        assert bob.tcp.rst_sent == 1

    def test_connect_with_no_peer_times_out(self, mininet):
        alice = mininet["alice"]
        from repro.net.addresses import Ipv4Address

        conn = alice.tcp.connect(Ipv4Address("192.168.1.99"), 5001)
        refused = []
        conn.on_refused = lambda c: refused.append(mininet.sim.now)
        mininet.run(60.0)
        assert refused  # SYN retries exhausted
        assert conn.state == TcpState.CLOSED

    def test_backlog_bounds_half_open_connections(self, mininet):
        alice, bob = mininet["alice"], mininet["bob"]
        listener = bob.tcp.listen(5001, lambda conn: None, backlog=2)
        # Raw SYNs from spoofed sources never complete the handshake.
        from repro.net.packet import Ipv4Packet, TcpFlags, TcpSegment
        from repro.net.addresses import Ipv4Address

        for index in range(10):
            syn = Ipv4Packet(
                src=Ipv4Address(f"172.16.0.{index + 1}"),
                dst=bob.ip,
                payload=TcpSegment(src_port=1000 + index, dst_port=5001, flags=TcpFlags.SYN),
            )
            alice.ip_layer.send_packet(syn)
        mininet.run(0.5)
        assert listener.half_open == 2
        assert listener.dropped_syn_backlog == 8

    def test_stop_listening_refuses_new_connections(self, mininet):
        alice, bob = mininet["alice"], mininet["bob"]
        listener = bob.tcp.listen(5001, lambda conn: None)
        listener.close()
        conn = alice.tcp.connect(bob.ip, 5001)
        refused = []
        conn.on_refused = lambda c: refused.append(True)
        mininet.run(1.0)
        assert refused

    def test_duplicate_listen_rejected(self, mininet):
        bob = mininet["bob"]
        bob.tcp.listen(5001, lambda conn: None)
        with pytest.raises(RuntimeError):
            bob.tcp.listen(5001, lambda conn: None)


class TestDataTransfer:
    def test_bulk_transfer_delivers_exact_byte_count(self, mininet):
        alice, bob = mininet["alice"], mininet["bob"]
        received = []
        start_echo_listener(bob, sink=received)
        conn = alice.tcp.connect(bob.ip, 5001)
        conn.on_connected = lambda c: c.send(500_000)
        mininet.run(2.0)
        assert sum(size for _, size in received) == 500_000

    def test_real_data_arrives_in_order(self, mininet):
        alice, bob = mininet["alice"], mininet["bob"]
        received = []
        start_echo_listener(bob, sink=received)
        conn = alice.tcp.connect(bob.ip, 5001)

        def on_connected(c):
            c.send(5, b"hello")
            c.send(1000)
            c.send(5, b"world")

        conn.on_connected = on_connected
        mininet.run(1.0)
        stream = b"".join(data for data, _ in received)
        assert stream.startswith(b"hello")
        assert stream.endswith(b"world")
        assert sum(size for _, size in received) == 1010

    def test_throughput_reaches_line_rate(self, mininet):
        alice, bob = mininet["alice"], mininet["bob"]
        received = []
        start_echo_listener(bob, sink=received)
        conn = alice.tcp.connect(bob.ip, 5001)
        conn.on_connected = lambda c: c.send(50_000_000)
        mininet.run(1.0)
        mbps = sum(size for _, size in received) * 8 / 1.0 / 1e6
        assert mbps > 90  # ~94 Mbps goodput on 100 Mbps Ethernet

    def test_send_before_close_only(self, mininet):
        alice, bob = mininet["alice"], mininet["bob"]
        start_echo_listener(bob)
        conn = alice.tcp.connect(bob.ip, 5001)

        def on_connected(c):
            c.send(10)
            c.close()
            with pytest.raises(RuntimeError):
                c.send(10)

        conn.on_connected = on_connected
        mininet.run(1.0)

    def test_custom_mss_bounds_segment_size(self, mininet):
        alice, bob = mininet["alice"], mininet["bob"]
        alice.tcp.default_mss = 500
        received = []

        def on_accept(conn):
            conn.on_data = lambda c, data, size: received.append(size)

        bob.tcp.listen(5001, on_accept)
        conn = alice.tcp.connect(bob.ip, 5001)
        conn.on_connected = lambda c: c.send(5000)
        mininet.run(1.0)
        assert max(received) <= 500
        assert sum(received) == 5000


class TestTeardown:
    def test_graceful_close_reaches_closed_on_both_ends(self, mininet):
        alice, bob = mininet["alice"], mininet["bob"]
        server_conns = start_echo_listener(bob)
        closed = []
        conn = alice.tcp.connect(bob.ip, 5001)

        def on_connected(c):
            c.send(100)
            c.close()

        conn.on_connected = on_connected
        conn.on_closed = lambda c: closed.append("client")

        mininet.run(0.2)
        # Server sees EOF (on_data with size 0) and closes its side.
        server = server_conns[0]
        assert server.state in (TcpState.CLOSE_WAIT, TcpState.CLOSED)
        if server.state == TcpState.CLOSE_WAIT:
            server.close()
        mininet.run(2.0)
        assert conn.state == TcpState.CLOSED
        assert server.state == TcpState.CLOSED

    def test_abort_sends_rst(self, mininet):
        alice, bob = mininet["alice"], mininet["bob"]
        server_conns = start_echo_listener(bob)
        reset = []
        conn = alice.tcp.connect(bob.ip, 5001)
        conn.on_connected = lambda c: c.abort()
        mininet.run(0.5)
        server = server_conns[0]
        server.on_closed = lambda c: reset.append(True)
        mininet.run(0.5)
        assert conn.state == TcpState.CLOSED
        assert server.state == TcpState.CLOSED

    def test_connection_forgotten_after_close(self, mininet):
        alice, bob = mininet["alice"], mininet["bob"]
        start_echo_listener(bob)
        conn = alice.tcp.connect(bob.ip, 5001)
        conn.on_connected = lambda c: c.abort()
        mininet.run(1.0)
        assert alice.tcp.connection_count == 0

    def test_eof_delivered_to_server_application(self, mininet):
        alice, bob = mininet["alice"], mininet["bob"]
        events = []

        def on_accept(conn):
            conn.on_data = lambda c, data, size: events.append(size)

        bob.tcp.listen(5001, on_accept)
        conn = alice.tcp.connect(bob.ip, 5001)

        def on_connected(c):
            c.send(10)
            c.close()

        conn.on_connected = on_connected
        mininet.run(1.0)
        assert events[-1] == 0  # EOF marker
