"""Tests for rules, patterns, port ranges and rule-set evaluation."""

import pytest
from hypothesis import given, strategies as st

from repro.firewall.rules import (
    Action,
    AddressPattern,
    Direction,
    PortRange,
    Rule,
    VpgRule,
)
from repro.firewall.ruleset import RuleSet
from repro.net.addresses import Ipv4Address
from repro.net.packet import IcmpMessage, IcmpType, IpProtocol, Ipv4Packet, TcpSegment, UdpDatagram

SRC = Ipv4Address("10.0.0.2")
DST = Ipv4Address("10.0.0.3")


def tcp_packet(src=SRC, dst=DST, sport=40000, dport=80):
    return Ipv4Packet(src=src, dst=dst, payload=TcpSegment(src_port=sport, dst_port=dport))


class TestPortRange:
    def test_contains(self):
        assert PortRange(10, 20).contains(15)
        assert not PortRange(10, 20).contains(21)

    def test_single_and_any(self):
        assert PortRange.single(80).contains(80)
        assert PortRange.any().is_any

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            PortRange(20, 10)
        with pytest.raises(ValueError):
            PortRange(0, 70000)

    def test_overlaps(self):
        assert PortRange(10, 20).overlaps(PortRange(20, 30))
        assert not PortRange(10, 20).overlaps(PortRange(21, 30))

    @given(
        st.integers(0, 65535), st.integers(0, 65535),
        st.integers(0, 65535), st.integers(0, 65535),
    )
    def test_subset_implies_overlap(self, a, b, c, d):
        lo1, hi1 = sorted((a, b))
        lo2, hi2 = sorted((c, d))
        inner, outer = PortRange(lo1, hi1), PortRange(lo2, hi2)
        if inner.is_subset_of(outer):
            assert inner.overlaps(outer)


class TestAddressPattern:
    def test_any_matches_everything(self):
        assert AddressPattern.any().matches(Ipv4Address("8.8.8.8"))

    def test_host_pattern_is_exact(self):
        pattern = AddressPattern.host(SRC)
        assert pattern.matches(SRC)
        assert not pattern.matches(SRC + 1)

    def test_prefix_matching(self):
        pattern = AddressPattern(Ipv4Address("10.0.0.0"), 8)
        assert pattern.matches(Ipv4Address("10.255.255.255"))
        assert not pattern.matches(Ipv4Address("11.0.0.0"))

    def test_subset_relation(self):
        narrow = AddressPattern(Ipv4Address("10.1.0.0"), 16)
        wide = AddressPattern(Ipv4Address("10.0.0.0"), 8)
        assert narrow.is_subset_of(wide)
        assert not wide.is_subset_of(narrow)

    def test_invalid_prefix_rejected(self):
        with pytest.raises(ValueError):
            AddressPattern(SRC, 40)

    def test_str(self):
        assert str(AddressPattern.any()) == "any"
        assert str(AddressPattern.host(SRC)) == "10.0.0.2/32"

    @given(st.integers(0, (1 << 32) - 1), st.integers(0, 32), st.integers(0, 32))
    def test_subset_transitive_with_self(self, value, p1, p2):
        address = Ipv4Address(value)
        tight = AddressPattern(address, max(p1, p2))
        loose = AddressPattern(address, min(p1, p2))
        assert tight.is_subset_of(loose)


class TestRuleMatching:
    def test_protocol_filter(self):
        rule = Rule(action=Action.ALLOW, protocol=IpProtocol.TCP)
        assert rule.matches(tcp_packet(), Direction.INBOUND)
        udp = Ipv4Packet(src=SRC, dst=DST, payload=UdpDatagram(1, 2))
        assert not rule.matches(udp, Direction.INBOUND)

    def test_wildcard_protocol_matches_icmp(self):
        rule = Rule(action=Action.ALLOW)
        icmp = Ipv4Packet(
            src=SRC, dst=DST, payload=IcmpMessage(icmp_type=IcmpType.ECHO_REQUEST)
        )
        assert rule.matches(icmp, Direction.INBOUND)

    def test_port_filters(self):
        rule = Rule(
            action=Action.ALLOW, protocol=IpProtocol.TCP, dst_ports=PortRange.single(80)
        )
        assert rule.matches(tcp_packet(dport=80), Direction.INBOUND)
        assert not rule.matches(tcp_packet(dport=81), Direction.INBOUND)

    def test_address_filters(self):
        rule = Rule(action=Action.ALLOW, src=AddressPattern.host(SRC))
        assert rule.matches(tcp_packet(src=SRC), Direction.INBOUND)
        assert not rule.matches(tcp_packet(src=DST), Direction.INBOUND)

    def test_direction_filter(self):
        rule = Rule(action=Action.ALLOW, direction=Direction.INBOUND)
        assert rule.matches(tcp_packet(), Direction.INBOUND)
        assert not rule.matches(tcp_packet(), Direction.OUTBOUND)
        both = Rule(action=Action.ALLOW, direction=Direction.BOTH)
        assert both.matches(tcp_packet(), Direction.OUTBOUND)

    def test_symmetric_rule_matches_mirrored_flow(self):
        rule = Rule(
            action=Action.ALLOW,
            protocol=IpProtocol.TCP,
            dst_ports=PortRange.single(5001),
            symmetric=True,
        )
        inbound = tcp_packet(sport=40000, dport=5001)
        response = tcp_packet(src=DST, dst=SRC, sport=5001, dport=40000)
        assert rule.matches(inbound, Direction.INBOUND)
        assert rule.matches(response, Direction.OUTBOUND)

    def test_asymmetric_rule_misses_response(self):
        rule = Rule(
            action=Action.ALLOW,
            protocol=IpProtocol.TCP,
            dst_ports=PortRange.single(5001),
            symmetric=False,
        )
        response = tcp_packet(src=DST, dst=SRC, sport=5001, dport=40000)
        assert not rule.matches(response, Direction.OUTBOUND)

    def test_vpg_rule_is_symmetric_and_costs_two(self):
        rule = VpgRule(action=Action.ALLOW, vpg_id=7)
        assert rule.symmetric
        assert rule.rule_cost == 2
        assert rule.matches_encrypted(7)
        assert not rule.matches_encrypted(8)

    def test_describe_mentions_action_and_name(self):
        rule = Rule(action=Action.DENY, name="blocker")
        text = rule.describe()
        assert "deny" in text and "blocker" in text


class TestRuleSetEvaluation:
    def test_first_match_wins(self):
        first = Rule(action=Action.DENY, protocol=IpProtocol.TCP)
        second = Rule(action=Action.ALLOW, protocol=IpProtocol.TCP)
        ruleset = RuleSet([first, second])
        result = ruleset.evaluate(tcp_packet(), Direction.INBOUND)
        assert result.action == Action.DENY
        assert result.rule is first
        assert result.rules_traversed == 1

    def test_default_action_when_nothing_matches(self):
        ruleset = RuleSet(
            [Rule(action=Action.ALLOW, protocol=IpProtocol.UDP)],
            default_action=Action.DENY,
        )
        result = ruleset.evaluate(tcp_packet(), Direction.INBOUND)
        assert result.action == Action.DENY
        assert result.rule is None
        assert result.rules_traversed == 1  # full table walked

    def test_rules_traversed_counts_vpg_pairs(self):
        ruleset = RuleSet(
            [
                VpgRule(action=Action.ALLOW, vpg_id=1, src=AddressPattern.host(SRC), dst=AddressPattern.host(SRC)),
                Rule(action=Action.ALLOW, protocol=IpProtocol.TCP),
            ]
        )
        result = ruleset.evaluate(tcp_packet(), Direction.INBOUND)
        assert result.rules_traversed == 3  # 2 (VPG pair) + 1

    def test_table_size_and_depth_of(self):
        vpg = VpgRule(action=Action.ALLOW, vpg_id=1)
        plain = Rule(action=Action.ALLOW)
        ruleset = RuleSet([vpg, plain])
        assert ruleset.table_size == 3
        assert ruleset.depth_of(plain) == 3
        with pytest.raises(ValueError):
            ruleset.depth_of(Rule(action=Action.DENY))

    def test_encrypted_evaluation_matches_by_spi(self):
        ruleset = RuleSet(
            [
                Rule(action=Action.DENY, protocol=IpProtocol.TCP),
                VpgRule(action=Action.ALLOW, vpg_id=9),
            ]
        )
        result = ruleset.evaluate_encrypted(9)
        assert result.allowed and result.is_vpg
        assert result.rules_traversed == 3
        miss = ruleset.evaluate_encrypted(10)
        assert miss.rule is None

    def test_cache_invalidated_on_mutation(self):
        ruleset = RuleSet([Rule(action=Action.ALLOW)], default_action=Action.DENY)
        packet = tcp_packet()
        assert ruleset.evaluate(packet, Direction.INBOUND).allowed
        with ruleset.mutate() as edit:
            edit.insert(0, Rule(action=Action.DENY, protocol=IpProtocol.TCP))
        assert not ruleset.evaluate(packet, Direction.INBOUND).allowed
        with ruleset.mutate() as edit:
            edit.remove(ruleset.rules[0])
        assert ruleset.evaluate(packet, Direction.INBOUND).allowed

    def test_mutation_batch_commits_once_and_bumps_version(self):
        ruleset = RuleSet([], default_action=Action.DENY)
        assert ruleset.version == 0
        with ruleset.mutate() as edit:
            edit.append(Rule(action=Action.ALLOW, protocol=IpProtocol.TCP))
            edit.append(Rule(action=Action.DENY))
            assert len(ruleset) == 0  # staged, not yet visible
        assert len(ruleset) == 2
        assert ruleset.version == 1

    def test_mutation_abandoned_on_exception(self):
        ruleset = RuleSet([Rule(action=Action.ALLOW)])
        with pytest.raises(RuntimeError):
            with ruleset.mutate() as edit:
                edit.clear()
                raise RuntimeError("boom")
        assert len(ruleset) == 1
        assert ruleset.version == 0

    def test_deprecated_single_shot_mutators_are_gone(self):
        # append/insert/remove were deprecated thin wrappers over
        # mutate(); their one-release grace period is over and they must
        # not silently reappear — all edits batch through mutate().
        ruleset = RuleSet([Rule(action=Action.ALLOW)], default_action=Action.DENY)
        assert not hasattr(ruleset, "append")
        assert not hasattr(ruleset, "insert")
        assert not hasattr(ruleset, "remove")

    def test_cached_result_identical_to_fresh(self):
        ruleset = RuleSet([Rule(action=Action.ALLOW, protocol=IpProtocol.TCP)])
        packet = tcp_packet()
        first = ruleset.evaluate(packet, Direction.INBOUND)
        second = ruleset.evaluate(packet, Direction.INBOUND)
        assert first is second  # memoised

    def test_find_vpg_for_packet(self):
        vpg = VpgRule(
            action=Action.ALLOW,
            protocol=IpProtocol.TCP,
            dst_ports=PortRange.single(80),
            vpg_id=4,
        )
        ruleset = RuleSet([vpg])
        hit = ruleset.find_vpg_for_packet(tcp_packet(dport=80))
        assert hit is not None and hit.rule is vpg
        assert ruleset.find_vpg_for_packet(tcp_packet(dport=81)) is None

    def test_describe_lists_rules(self):
        ruleset = RuleSet([Rule(action=Action.ALLOW, name="one")], name="demo")
        text = ruleset.describe()
        assert "demo" in text and "one" in text
