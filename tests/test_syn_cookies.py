"""Tests for SYN-cookie defence against backlog-exhaustion SYN floods."""

import pytest

from repro.apps.flood import FloodGenerator, FloodKind, FloodSpec
from repro.net.addresses import Ipv4Address
from repro.net.packet import Ipv4Packet, TcpFlags, TcpSegment


def spoofed_syn_flood(net, target, listener_port, count=50):
    """Raw SYNs from addresses that will never complete a handshake."""
    attacker = net["mallory"]
    for index in range(count):
        syn = Ipv4Packet(
            src=Ipv4Address(f"172.16.1.{index % 250 + 1}"),
            dst=target.ip,
            payload=TcpSegment(src_port=1000 + index, dst_port=listener_port, flags=TcpFlags.SYN),
        )
        attacker.ip_layer.send_packet(syn)


class TestSynCookies:
    def test_normal_handshake_unaffected_by_cookie_mode(self, trinet):
        alice, bob = trinet["alice"], trinet["bob"]
        accepted = []
        bob.tcp.listen(5001, accepted.append, syn_cookies=True)
        conn = alice.tcp.connect(bob.ip, 5001)
        done = []
        conn.on_connected = lambda c: done.append(True)
        trinet.run(0.5)
        assert done and accepted

    def test_flooded_backlog_without_cookies_locks_clients_out(self, trinet):
        alice, bob = trinet["alice"], trinet["bob"]
        listener = bob.tcp.listen(5001, lambda conn: None, backlog=8, syn_cookies=False)
        spoofed_syn_flood(trinet, bob, 5001, count=40)
        trinet.run(0.2)
        assert listener.half_open == 8
        # A legitimate client's SYN now hits the full backlog and is
        # dropped; the connect stalls into retries.
        conn = alice.tcp.connect(bob.ip, 5001)
        connected = []
        conn.on_connected = lambda c: connected.append(True)
        trinet.run(0.5)
        assert not connected
        assert listener.dropped_syn_backlog > 40 - 8

    def test_cookies_keep_accepting_under_the_same_flood(self, trinet):
        alice, bob = trinet["alice"], trinet["bob"]
        accepted = []

        def on_accept(conn):
            accepted.append(conn)
            conn.on_data = lambda c, data, size: received.append((data, size))

        received = []
        listener = bob.tcp.listen(5001, on_accept, backlog=8, syn_cookies=True)
        spoofed_syn_flood(trinet, bob, 5001, count=40)
        trinet.run(0.2)
        assert listener.half_open == 8  # state still bounded
        assert listener.cookies_sent >= 30
        conn = alice.tcp.connect(bob.ip, 5001)
        connected = []
        conn.on_connected = lambda c: (connected.append(True), c.send(5, b"hello"))
        trinet.run(0.5)
        assert connected
        assert listener.cookies_validated == 1
        assert received and received[0][0] == b"hello"

    def test_cookie_connection_carries_bulk_data(self, trinet):
        alice, bob = trinet["alice"], trinet["bob"]
        received = []

        def on_accept(conn):
            conn.on_data = lambda c, data, size: received.append(size)

        bob.tcp.listen(5001, on_accept, backlog=1, syn_cookies=True)
        # Exhaust the one-slot backlog so alice's handshake uses a cookie.
        spoofed_syn_flood(trinet, bob, 5001, count=5)
        trinet.run(0.1)
        conn = alice.tcp.connect(bob.ip, 5001)
        conn.on_connected = lambda c: c.send(100_000)
        trinet.run(2.0)
        assert sum(received) == 100_000

    def test_forged_ack_without_valid_cookie_gets_rst(self, trinet):
        bob, mallory = trinet["bob"], trinet["mallory"]
        listener = bob.tcp.listen(5001, lambda conn: None, backlog=1, syn_cookies=True)
        forged = Ipv4Packet(
            src=mallory.ip,
            dst=bob.ip,
            payload=TcpSegment(
                src_port=4444, dst_port=5001, seq=1234, ack=9999, flags=TcpFlags.ACK
            ),
        )
        mallory.ip_layer.send_packet(forged)
        trinet.run(0.1)
        assert listener.cookies_validated == 0
        assert bob.tcp.rst_sent == 1

    def test_cookie_is_endpoint_specific(self, trinet):
        # A cookie minted for one 4-tuple does not validate another.
        bob, mallory = trinet["bob"], trinet["mallory"]
        listener = bob.tcp.listen(5001, lambda conn: None, backlog=1, syn_cookies=True)
        cookie = bob.tcp._cookie(mallory.ip, 4444, 5001, 100)
        wrong_port = Ipv4Packet(
            src=mallory.ip,
            dst=bob.ip,
            payload=TcpSegment(
                src_port=4445, dst_port=5001, seq=101, ack=cookie + 1, flags=TcpFlags.ACK
            ),
        )
        mallory.ip_layer.send_packet(wrong_port)
        trinet.run(0.1)
        assert listener.cookies_validated == 0
