"""Tests for the packet model: sizes, flow tuples, serialization."""

import pytest
from hypothesis import given, strategies as st

from repro.net.addresses import Ipv4Address, MacAddress
from repro.net.checksum import internet_checksum, verify_checksum
from repro.net.packet import (
    EthernetFrame,
    IcmpMessage,
    IcmpType,
    IpProtocol,
    Ipv4Packet,
    RawPayload,
    TcpFlags,
    TcpSegment,
    UdpDatagram,
)

SRC = Ipv4Address("10.0.0.1")
DST = Ipv4Address("10.0.0.2")


class TestSizes:
    def test_udp_size(self):
        assert UdpDatagram(src_port=1, dst_port=2, payload_size=100).size == 108

    def test_tcp_size(self):
        assert TcpSegment(src_port=1, dst_port=2, payload_size=1460).size == 1480

    def test_icmp_size(self):
        assert IcmpMessage(icmp_type=IcmpType.ECHO_REQUEST, payload_size=56).size == 64

    def test_ipv4_size(self):
        packet = Ipv4Packet(src=SRC, dst=DST, payload=UdpDatagram(1, 2, payload_size=8))
        assert packet.size == 20 + 8 + 8

    def test_frame_wire_size_includes_header_and_fcs(self):
        packet = Ipv4Packet(
            src=SRC, dst=DST, payload=TcpSegment(src_port=1, dst_port=2, payload_size=1460)
        )
        frame = EthernetFrame(
            src_mac=MacAddress.from_index(1), dst_mac=MacAddress.from_index(2), payload=packet
        )
        assert frame.wire_size == 1518  # full-size frame

    def test_frame_minimum_padding(self):
        packet = Ipv4Packet(src=SRC, dst=DST, payload=TcpSegment(src_port=1, dst_port=2))
        frame = EthernetFrame(
            src_mac=MacAddress.from_index(1), dst_mac=MacAddress.from_index(2), payload=packet
        )
        # 18 + 40 = 58 < 64: padded to the Ethernet minimum.
        assert frame.wire_size == 64

    def test_negative_payload_rejected(self):
        with pytest.raises(ValueError):
            UdpDatagram(src_port=1, dst_port=2, payload_size=-1)

    def test_bad_port_rejected(self):
        with pytest.raises(ValueError):
            TcpSegment(src_port=70000, dst_port=1)

    def test_raw_payload_data_longer_than_size_rejected(self):
        with pytest.raises(ValueError):
            RawPayload(size=2, data=b"abc")


class TestFlowAndAccessors:
    def test_flow_tuple_tcp(self):
        packet = Ipv4Packet(
            src=SRC, dst=DST, payload=TcpSegment(src_port=4000, dst_port=80)
        )
        assert packet.flow() == (IpProtocol.TCP, SRC, 4000, DST, 80)

    def test_flow_tuple_icmp_has_zero_ports(self):
        packet = Ipv4Packet(
            src=SRC, dst=DST, payload=IcmpMessage(icmp_type=IcmpType.ECHO_REQUEST)
        )
        assert packet.flow() == (IpProtocol.ICMP, SRC, 0, DST, 0)

    def test_protocol_inferred_from_payload(self):
        assert Ipv4Packet(src=SRC, dst=DST, payload=UdpDatagram(1, 2)).protocol == IpProtocol.UDP

    def test_raw_payload_requires_explicit_protocol(self):
        with pytest.raises(ValueError):
            Ipv4Packet(src=SRC, dst=DST, payload=RawPayload(size=10))

    def test_typed_accessors(self):
        packet = Ipv4Packet(src=SRC, dst=DST, payload=TcpSegment(src_port=1, dst_port=2))
        assert packet.tcp is packet.payload
        assert packet.udp is None
        assert packet.icmp is None

    def test_tcp_flag_properties(self):
        syn_ack = TcpSegment(src_port=1, dst_port=2, flags=TcpFlags.SYN | TcpFlags.ACK)
        assert syn_ack.syn and syn_ack.ack_flag
        assert not syn_ack.fin and not syn_ack.rst

    def test_bad_ttl_rejected(self):
        with pytest.raises(ValueError):
            Ipv4Packet(src=SRC, dst=DST, payload=UdpDatagram(1, 2), ttl=0)

    def test_describe_mentions_endpoints(self):
        packet = Ipv4Packet(src=SRC, dst=DST, payload=UdpDatagram(5, 7))
        assert "10.0.0.1:5" in packet.describe()
        assert "UDP" in packet.describe()


class TestSerialization:
    def test_ipv4_header_checksum_is_valid(self):
        packet = Ipv4Packet(src=SRC, dst=DST, payload=UdpDatagram(1, 2, payload_size=4))
        assert verify_checksum(packet.to_bytes()[:20])

    def test_udp_roundtrip(self):
        packet = Ipv4Packet(
            src=SRC, dst=DST, payload=UdpDatagram(53, 1053, payload_size=11, data=b"hello world")
        )
        parsed = Ipv4Packet.from_bytes(packet.to_bytes())
        assert parsed.flow() == packet.flow()
        assert parsed.udp.data == b"hello world"

    def test_tcp_roundtrip_preserves_header_fields(self):
        segment = TcpSegment(
            src_port=1024,
            dst_port=80,
            seq=12345,
            ack=67890,
            flags=TcpFlags.PSH | TcpFlags.ACK,
            window=4096,
            payload_size=3,
            data=b"GET",
        )
        packet = Ipv4Packet(src=SRC, dst=DST, payload=segment)
        parsed = Ipv4Packet.from_bytes(packet.to_bytes())
        tcp = parsed.tcp
        assert (tcp.seq, tcp.ack, tcp.window) == (12345, 67890, 4096)
        assert tcp.flags == TcpFlags.PSH | TcpFlags.ACK
        assert tcp.data == b"GET"

    def test_icmp_roundtrip_and_checksum(self):
        message = IcmpMessage(
            icmp_type=IcmpType.ECHO_REQUEST, identifier=7, sequence=3, payload_size=8
        )
        raw = message.to_bytes()
        assert verify_checksum(raw)
        parsed = IcmpMessage.from_bytes(raw)
        assert (parsed.identifier, parsed.sequence) == (7, 3)

    def test_size_only_payload_serializes_as_zeros(self):
        packet = Ipv4Packet(src=SRC, dst=DST, payload=UdpDatagram(1, 2, payload_size=10))
        assert packet.to_bytes()[-10:] == b"\x00" * 10

    def test_truncated_input_rejected(self):
        with pytest.raises(ValueError):
            Ipv4Packet.from_bytes(b"\x45\x00\x00")

    def test_non_ipv4_rejected(self):
        with pytest.raises(ValueError):
            Ipv4Packet.from_bytes(b"\x60" + b"\x00" * 30)

    @given(
        src_port=st.integers(0, 65535),
        dst_port=st.integers(0, 65535),
        seq=st.integers(0, 2**32 - 1),
        payload=st.binary(max_size=64),
        extra=st.integers(0, 512),
    )
    def test_tcp_roundtrip_property(self, src_port, dst_port, seq, payload, extra):
        segment = TcpSegment(
            src_port=src_port,
            dst_port=dst_port,
            seq=seq,
            payload_size=len(payload) + extra,
            data=payload,
        )
        packet = Ipv4Packet(src=SRC, dst=DST, payload=segment)
        parsed = Ipv4Packet.from_bytes(packet.to_bytes())
        assert parsed.tcp.seq == seq
        assert parsed.tcp.payload_size == len(payload) + extra
        assert parsed.tcp.data[: len(payload)] == payload

    @given(payload=st.binary(max_size=128))
    def test_udp_roundtrip_property(self, payload):
        packet = Ipv4Packet(
            src=SRC,
            dst=DST,
            payload=UdpDatagram(9, 10, payload_size=len(payload), data=payload),
        )
        parsed = Ipv4Packet.from_bytes(packet.to_bytes())
        assert parsed.udp.data == payload


class TestChecksum:
    def test_known_vector(self):
        # RFC 1071 example data.
        data = bytes([0x00, 0x01, 0xF2, 0x03, 0xF4, 0xF5, 0xF6, 0xF7])
        checksum = internet_checksum(data)
        assert checksum == 0xFFFF - ((0x0001 + 0xF203 + 0xF4F5 + 0xF6F7) % 0xFFFF)

    def test_odd_length_padded(self):
        assert internet_checksum(b"\x01") == internet_checksum(b"\x01\x00")

    def test_verify_accepts_valid(self):
        data = b"\x12\x34\x56\x78"
        checksum = internet_checksum(data)
        stamped = data + checksum.to_bytes(2, "big")
        assert verify_checksum(stamped)

    def test_verify_rejects_corruption(self):
        data = b"\x12\x34\x56\x78"
        checksum = internet_checksum(data)
        stamped = bytearray(data + checksum.to_bytes(2, "big"))
        stamped[0] ^= 0xFF
        assert not verify_checksum(bytes(stamped))

    @given(st.binary(min_size=2, max_size=256).filter(lambda b: len(b) % 2 == 0))
    def test_checksum_self_verifies_property(self, data):
        # The Internet checksum self-verifies only when the checksum field
        # lands on a 16-bit word boundary, as real protocol headers ensure.
        checksum = internet_checksum(data)
        assert verify_checksum(data + checksum.to_bytes(2, "big"))
