"""Sanity checks for the example scripts.

The examples are exercised end-to-end by humans; here we keep them from
rotting: each must compile, carry a main() entry point and a docstring,
and import only the public package surface.
"""

import ast
import pathlib

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.name)
class TestExamples:
    def test_compiles(self, path):
        compile(path.read_text(), str(path), "exec")

    def test_has_docstring_and_main(self, path):
        tree = ast.parse(path.read_text())
        assert ast.get_docstring(tree), f"{path.name} lacks a module docstring"
        function_names = {
            node.name for node in tree.body if isinstance(node, ast.FunctionDef)
        }
        assert "main" in function_names

    def test_has_run_instructions(self, path):
        assert f"python examples/{path.name}" in path.read_text()

    def test_imports_only_repro_and_stdlib(self, path):
        tree = ast.parse(path.read_text())
        for node in ast.walk(tree):
            modules = []
            if isinstance(node, ast.Import):
                modules = [alias.name for alias in node.names]
            elif isinstance(node, ast.ImportFrom) and node.module:
                modules = [node.module]
            for module in modules:
                root = module.split(".")[0]
                assert root in ("repro",) or root in _STDLIB, (
                    f"{path.name} imports unexpected module {module}"
                )


_STDLIB = {"argparse", "sys", "os", "time", "math", "json", "io", "struct"}


def test_at_least_six_examples_exist():
    assert len(EXAMPLE_FILES) >= 6
