"""Tests for UDP sockets, ICMP behaviour, and host plumbing."""

import pytest

from repro.host.icmp import ICMP_ERROR_BURST
from repro.net.addresses import Ipv4Address
from repro.net.packet import IcmpType, Ipv4Packet, UdpDatagram


class TestUdp:
    def test_datagram_delivery(self, mininet):
        alice, bob = mininet["alice"], mininet["bob"]
        got = []
        bob.udp.bind(7000, lambda src, sport, size, data: got.append((src, sport, size, data)))
        sender = alice.udp.bind(0)
        sender.send(bob.ip, 7000, size=11, data=b"hello world")
        mininet.run(0.1)
        assert got == [(alice.ip, sender.port, 11, b"hello world")]

    def test_ephemeral_ports_are_unique(self, mininet):
        alice = mininet["alice"]
        a = alice.udp.bind(0)
        b = alice.udp.bind(0)
        assert a.port != b.port

    def test_duplicate_bind_rejected(self, mininet):
        alice = mininet["alice"]
        alice.udp.bind(5353)
        with pytest.raises(RuntimeError):
            alice.udp.bind(5353)

    def test_close_releases_port(self, mininet):
        alice = mininet["alice"]
        sock = alice.udp.bind(5353)
        sock.close()
        alice.udp.bind(5353)  # no error

    def test_unbound_port_triggers_port_unreachable(self, mininet):
        alice, bob = mininet["alice"], mininet["bob"]
        sender = alice.udp.bind(0)
        sender.send(bob.ip, 9999, size=10)
        mininet.run(0.1)
        assert bob.udp.unreachable_sent == 1
        assert bob.icmp.errors_sent == 1

    def test_socket_counters(self, mininet):
        alice, bob = mininet["alice"], mininet["bob"]
        sock = bob.udp.bind(7000)
        sender = alice.udp.bind(0)
        for _ in range(3):
            sender.send(bob.ip, 7000, size=100)
        mininet.run(0.1)
        assert sock.datagrams_received == 3
        assert sock.bytes_received == 300


class TestIcmp:
    def test_ping_round_trip(self, mininet):
        alice, bob = mininet["alice"], mininet["bob"]
        replies = []
        alice.icmp.ping(
            bob.ip,
            sequence=5,
            on_reply=lambda src, ident, seq, size: replies.append((src, seq)),
        )
        mininet.run(0.1)
        assert replies == [(bob.ip, 5)]
        assert bob.icmp.echo_requests_received == 1
        assert alice.icmp.echo_replies_received == 1

    def test_icmp_error_rate_limit(self, mininet):
        alice, bob = mininet["alice"], mininet["bob"]
        sender = alice.udp.bind(0)
        for _ in range(100):
            sender.send(bob.ip, 9999, size=10)
        mininet.run(0.2)
        # Token bucket: burst then suppression.
        assert bob.icmp.errors_sent <= ICMP_ERROR_BURST + 3
        assert bob.icmp.errors_suppressed > 0

    def test_icmp_error_tokens_refill(self, mininet):
        alice, bob = mininet["alice"], mininet["bob"]
        sender = alice.udp.bind(0)
        for _ in range(20):
            sender.send(bob.ip, 9999, size=10)
        mininet.run(0.1)
        sent_after_burst = bob.icmp.errors_sent
        mininet.run(2.0)  # refill window
        sender.send(bob.ip, 9999, size=10)
        mininet.run(0.1)
        assert bob.icmp.errors_sent == sent_after_burst + 1


class TestHostPlumbing:
    def test_packets_to_other_hosts_are_ignored(self, mininet):
        alice, bob = mininet["alice"], mininet["bob"]
        stranger = Ipv4Address("203.0.113.5")
        packet = Ipv4Packet(src=alice.ip, dst=stranger, payload=UdpDatagram(1, 2))
        # Force-deliver to bob's stack entry point.
        bob.deliver_packet(packet)
        assert bob.ip_layer.packets_received == 0

    def test_arp_fallback_is_broadcast(self, mininet):
        alice = mininet["alice"]
        from repro.net.addresses import BROADCAST_MAC

        assert alice.ip_layer.resolve(Ipv4Address("203.0.113.77")) == BROADCAST_MAC

    def test_double_nic_attach_rejected(self, mininet):
        from repro.nic.standard import StandardNic

        alice = mininet["alice"]
        with pytest.raises(RuntimeError):
            alice.attach_nic(StandardNic(mininet.sim))

    def test_ip_identification_increments(self, mininet):
        alice, bob = mininet["alice"], mininet["bob"]
        seen = []
        bob.udp.bind(7000, lambda *args: None)
        original = bob.deliver_packet
        bob.deliver_packet = lambda packet: (seen.append(packet.identification), original(packet))
        sender = alice.udp.bind(0)
        sender.send(bob.ip, 7000, size=1)
        sender.send(bob.ip, 7000, size=1)
        mininet.run(0.1)
        assert seen[1] == seen[0] + 1

    def test_raw_send_allows_spoofed_source(self, mininet):
        alice, bob = mininet["alice"], mininet["bob"]
        got = []
        bob.udp.bind(7000, lambda src, sport, size, data: got.append(src))
        spoofed = Ipv4Packet(
            src=Ipv4Address("1.2.3.4"), dst=bob.ip, payload=UdpDatagram(1, 7000)
        )
        alice.ip_layer.send_packet(spoofed)
        mininet.run(0.1)
        assert got == [Ipv4Address("1.2.3.4")]
