"""Tests for the jittered exponential push backoff (repro.policy.push)."""

import pytest

from repro.firewall.builders import deny_all
from repro.nic.efw import EfwNic
from repro.policy.audit import AuditEventKind
from repro.policy.push import FAILED, PushBackoff
from repro.policy.server import NicAgent, PolicyServer
from repro.sim.rng import RngRegistry


class TestPushBackoffSchedule:
    def test_unjittered_delays_are_exponential(self):
        schedule = PushBackoff(base=0.05, multiplier=2.0, jitter=0.0)
        assert [schedule.delay(k) for k in range(4)] == [0.05, 0.1, 0.2, 0.4]

    def test_flat_schedule_is_the_legacy_fixed_resend(self):
        schedule = PushBackoff(base=0.05, multiplier=1.0, jitter=0.0)
        assert [schedule.delay(k) for k in range(3)] == [0.05, 0.05, 0.05]

    def test_jitter_requires_rng_and_stays_bounded(self):
        schedule = PushBackoff(base=0.1, multiplier=2.0, jitter=0.2)
        with pytest.raises(ValueError):
            schedule.delay(0)
        rng = RngRegistry(3).stream("jitter")
        for attempt in range(6):
            nominal = 0.1 * 2.0**attempt
            delay = schedule.delay(attempt, rng)
            assert nominal * 0.8 <= delay <= nominal * 1.2

    def test_jitter_is_deterministic_for_a_seed(self):
        schedule = PushBackoff(base=0.1, jitter=0.1)
        first = [schedule.delay(k, RngRegistry(9).stream("s")) for k in range(4)]
        second = [schedule.delay(k, RngRegistry(9).stream("s")) for k in range(4)]
        # Fresh registry, same seed and name -> identical draws.
        assert first != [0.1 * 2.0**k for k in range(4)]
        assert first == second

    def test_worst_case_elapsed_sums_with_jitter_headroom(self):
        schedule = PushBackoff(base=0.1, multiplier=2.0, jitter=0.1)
        expected = sum(0.1 * 2.0**k * 1.1 for k in range(3))
        assert schedule.worst_case_elapsed(2) == pytest.approx(expected)

    def test_worst_case_elapsed_caps_at_max_elapsed(self):
        schedule = PushBackoff(base=0.1, multiplier=2.0, jitter=0.0, max_elapsed=0.25)
        assert schedule.worst_case_elapsed(10) == 0.25

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            PushBackoff(base=0.0)
        with pytest.raises(ValueError):
            PushBackoff(base=0.1, multiplier=0.5)
        with pytest.raises(ValueError):
            PushBackoff(base=0.1, jitter=1.0)
        with pytest.raises(ValueError):
            PushBackoff(base=0.1, max_elapsed=0.0)


@pytest.fixture
def blackholed(mininet):
    """A push target whose datagrams all vanish on the wire."""
    alice, bob = mininet["alice"], mininet["bob"]
    efw = EfwNic(mininet.sim, lockup_enabled=False)
    port = bob.nic.port
    port.device = None
    efw.attach(port)
    bob.nic = None
    bob.attach_nic(efw)
    server = PolicyServer(alice)
    agent = NicAgent(bob, efw)
    server.register_agent(agent)
    server.define_policy("p", deny_all())
    server.assign("bob", "p")
    server._send_push_datagram = lambda *args: None
    return mininet, server, agent, bob


class TestServerBackoffIntegration:
    def test_backoff_trajectory_recorded_until_exhaustion(self, blackholed):
        mininet, server, _, _ = blackholed
        outcome = server.push_policy(
            "bob",
            inline=False,
            retries=3,
            backoff=PushBackoff(base=0.05, multiplier=2.0, jitter=0.0),
        )
        mininet.run(2.0)
        assert outcome.status == FAILED
        assert outcome.attempts == 4
        assert server.pushes_retried == 3
        assert outcome.backoff_s == [0.05, 0.1, 0.2, 0.4]
        failures = server.audit.events(AuditEventKind.PUSH_FAILED, "bob")
        assert [event.details["reason"] for event in failures] == [
            "retries-exhausted"
        ]

    def test_max_elapsed_cuts_the_chain_short(self, blackholed):
        mininet, server, _, _ = blackholed
        outcome = server.push_policy(
            "bob",
            inline=False,
            retries=10,
            backoff=PushBackoff(
                base=0.05, multiplier=2.0, jitter=0.0, max_elapsed=0.2
            ),
        )
        mininet.run(2.0)
        assert outcome.status == FAILED
        # 0.05 elapsed -> next wait 0.1 fits (0.15 <= 0.2); at 0.15 the
        # next nominal wait (0.2) would land at 0.35 > 0.2 -> give up.
        assert outcome.backoff_s == [0.05, 0.1]
        assert server.pushes_retried == 1
        failures = server.audit.events(AuditEventKind.PUSH_FAILED, "bob")
        assert [event.details["reason"] for event in failures] == ["max-elapsed"]

    def test_jittered_chain_uses_the_host_seeded_stream(self, blackholed):
        mininet, server, _, _ = blackholed
        outcome = server.push_policy(
            "bob",
            inline=False,
            retries=2,
            backoff=PushBackoff(base=0.05, multiplier=2.0, jitter=0.1),
        )
        mininet.run(2.0)
        assert outcome.status == FAILED
        assert len(outcome.backoff_s) == 3
        for attempt, delay in enumerate(outcome.backoff_s):
            nominal = 0.05 * 2.0**attempt
            assert nominal * 0.9 <= delay <= nominal * 1.1
            assert delay != nominal
