"""Tests for the engine-driven metrics sampler."""

import pytest

from repro.obs.registry import MetricsRegistry
from repro.obs.sampler import Sampler
from repro.sim.engine import Simulator


def make(interval=0.1):
    sim = Simulator()
    registry = MetricsRegistry()
    return sim, registry, Sampler(sim, registry, interval)


class TestSampler:
    def test_interval_must_be_positive(self):
        sim, registry, _ = make()
        with pytest.raises(ValueError):
            Sampler(sim, registry, 0.0)

    def test_samples_on_the_interval_against_run_until(self):
        sim, registry, sampler = make(interval=0.1)
        counter = registry.counter("events")
        for step in range(1, 4):
            sim.schedule(step * 0.1, counter.inc)  # fires at .1, .2, .3
        sampler.start()
        sim.run(until=0.35)
        series = sampler.snapshot().find("events")
        times = [time for time, _ in series.points]
        assert times == pytest.approx([0.0, 0.1, 0.2, 0.3])
        assert sampler.samples_taken == 4
        # The tick at t and the increment at t execute in schedule order:
        # the increments were scheduled first, so each sample sees them.
        assert [value for _, value in series.points] == [0.0, 1.0, 2.0, 3.0]
        assert series.final == 3.0

    def test_start_is_idempotent_and_stop_halts_ticking(self):
        sim, registry, sampler = make(interval=0.1)
        registry.counter("events")
        sampler.start()
        sampler.start()
        sim.run(until=0.15)
        assert sampler.samples_taken == 2  # t=0.0 and t=0.1, not doubled
        sampler.stop()
        sim.run(until=1.0)
        assert sampler.samples_taken == 2

    def test_late_registered_metric_joins_at_next_tick(self):
        sim, registry, sampler = make(interval=0.1)
        sampler.start()
        sim.schedule(0.15, lambda: registry.gauge("late").set(4))
        sim.run(until=0.35)
        series = sampler.snapshot().find("late")
        times = [time for time, _ in series.points]
        assert times == pytest.approx([0.2, 0.3])
        assert [value for _, value in series.points] == [4.0, 4.0]

    def test_snapshot_includes_histogram_buckets(self):
        sim, registry, sampler = make()
        histogram = registry.histogram("lat", buckets=(1.0, 2.0), app="x")
        histogram.observe(0.5)
        histogram.observe(5.0)
        sampler.start()
        sim.run(until=0.05)
        snapshot = sampler.snapshot()
        series = snapshot.find("lat", app="x")
        assert series.kind == "histogram"
        assert series.buckets == [(1.0, 1), (2.0, 0), (None, 1)]
        assert series.final == 2.0

    def test_find_matches_on_labels(self):
        sim, registry, sampler = make()
        registry.counter("packets", nic="efw").inc(3)
        registry.counter("packets", nic="adf").inc(9)
        sampler.sample()
        snapshot = sampler.snapshot()
        assert snapshot.find("packets", nic="adf").final == 9.0
        assert snapshot.find("packets", nic="missing") is None
        assert snapshot.names() == ["packets"]

    def test_sampling_does_not_disturb_component_events(self):
        # Identical simulations with and without a sampler: same clock,
        # same component outcomes (the sampler only reads).
        def build(with_sampler):
            sim = Simulator()
            registry = MetricsRegistry()
            hits = []
            for step in range(1, 6):
                sim.schedule(step * 0.07, lambda step=step: hits.append((sim.now, step)))
            if with_sampler:
                Sampler(sim, registry, 0.05).start()
            sim.run(until=0.5)
            return hits, sim.now

        assert build(False) == build(True)
