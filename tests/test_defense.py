"""Tests for the closed flood-defense loop (repro.defense, repro.nic.ratelimit)."""

import pytest

from repro.apps.flood import FloodGenerator, FloodKind, FloodSpec
from repro.core.testbed import DeviceKind, Testbed
from repro.defense import (
    DefenseConfig,
    DetectorConfig,
    EnableRateLimiter,
    FloodDetector,
    QuarantinePort,
    RestartAgent,
    TargetedDenyRule,
)
from repro.defense.detector import REASON_DENY_RATE, REASON_HEARTBEAT
from repro.firewall.builders import deny_all, padded_ruleset, service_rule
from repro.firewall.rules import Action, IpProtocol
from repro.net.addresses import Ipv4Address
from repro.net.packet import Ipv4Packet, UdpDatagram
from repro.nic.ratelimit import IngressRateLimiter, TokenBucket
from repro.policy_ports import AGENT_PORT
from repro.sim.engine import Simulator


class TestTokenBucket:
    def test_burst_admits_then_caps(self):
        bucket = TokenBucket(rate_per_s=100.0, burst=5.0)
        admitted = [bucket.admit(0.0) for _ in range(8)]
        assert admitted == [True] * 5 + [False] * 3

    def test_refill_is_a_pure_function_of_elapsed_time(self):
        bucket = TokenBucket(rate_per_s=100.0, burst=5.0)
        for _ in range(5):
            bucket.admit(0.0)
        assert not bucket.admit(0.0)
        # 0.02 s at 100/s refills exactly two tokens.
        assert bucket.admit(0.02)
        assert bucket.admit(0.02)
        assert not bucket.admit(0.02)

    def test_refill_never_exceeds_burst(self):
        bucket = TokenBucket(rate_per_s=1000.0, burst=3.0)
        bucket.admit(0.0)
        admitted = sum(1 for _ in range(10) if bucket.admit(100.0))
        assert admitted == 3

    def test_deterministic_across_instances(self):
        # Two buckets fed identical (time, packet) sequences answer
        # identically — the property that makes sweep results identical
        # for any --jobs worker count.
        times = [i * 0.003 for i in range(200)]
        a = TokenBucket(50.0, 10.0)
        b = TokenBucket(50.0, 10.0)
        assert [a.admit(t) for t in times] == [b.admit(t) for t in times]

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(0.0, 5.0)
        with pytest.raises(ValueError):
            TokenBucket(10.0, 0.5)


def _udp(src: str, dst: str, dst_port: int) -> Ipv4Packet:
    return Ipv4Packet(
        src=Ipv4Address(src),
        dst=Ipv4Address(dst),
        payload=UdpDatagram(src_port=40000, dst_port=dst_port),
    )


class TestIngressRateLimiter:
    def test_scoped_to_source(self):
        sim = Simulator()
        limiter = IngressRateLimiter(
            sim, "t.efw", rate_pps=100.0, burst=1.0, src=Ipv4Address("10.0.0.4")
        )
        flood = _udp("10.0.0.4", "10.0.0.3", 7777)
        legit = _udp("10.0.0.2", "10.0.0.3", 5001)
        assert limiter.admit(flood, 0.0)  # the one burst token
        assert not limiter.admit(flood, 0.0)
        # Out-of-scope traffic passes untouched even with the bucket dry.
        assert limiter.admit(legit, 0.0)
        assert limiter.admitted == 1 and limiter.dropped == 1

    def test_scoped_to_port(self):
        sim = Simulator()
        limiter = IngressRateLimiter(sim, "t.efw", rate_pps=100.0, burst=1.0, dst_port=7777)
        assert limiter.admit(_udp("10.0.0.4", "10.0.0.3", 7777), 0.0)
        assert not limiter.admit(_udp("10.0.0.5", "10.0.0.3", 7777), 0.0)
        assert limiter.admit(_udp("10.0.0.4", "10.0.0.3", 5001), 0.0)

    def test_control_plane_is_exempt(self):
        # A rate-limited card must still accept policy pushes, or the
        # mitigation could strand it.
        sim = Simulator()
        limiter = IngressRateLimiter(
            sim, "t.efw", rate_pps=100.0, burst=1.0, src=Ipv4Address("10.0.0.1")
        )
        push = _udp("10.0.0.1", "10.0.0.3", AGENT_PORT)
        assert not limiter.matches(push)
        for _ in range(50):
            assert limiter.admit(push, 0.0)
        assert limiter.dropped == 0

    def test_limited_efw_survives_a_deny_flood(self):
        # The mitigation that actually works: shed the flood before the
        # slow path so the deny rate stays under the lockup threshold.
        bed = Testbed(device=DeviceKind.EFW)
        bed.install_target_policy(deny_all())
        nic = bed.target.nic
        nic.install_ingress_limiter(
            IngressRateLimiter(
                bed.sim, nic.name, rate_pps=500.0, src=bed.attacker.ip
            )
        )
        flood = FloodGenerator(bed.attacker, FloodSpec(kind=FloodKind.UDP, dst_port=9))
        flood.start(bed.target.ip, rate_pps=20_000, duration=1.0)
        bed.run(1.2)
        assert not nic.wedged
        assert nic.ratelimited_drops > 10_000

    def test_unlimited_efw_wedges_under_the_same_flood(self):
        bed = Testbed(device=DeviceKind.EFW)
        bed.install_target_policy(deny_all())
        flood = FloodGenerator(bed.attacker, FloodSpec(kind=FloodKind.UDP, dst_port=9))
        flood.start(bed.target.ip, rate_pps=20_000, duration=1.0)
        bed.run(1.2)
        assert bed.target.nic.wedged


class _FakeNic:
    """A counter-bearing stand-in for detector unit tests."""

    def __init__(self, name="fake.nic"):
        self.name = name
        self.frames_received = 0
        self.rx_denied = 0
        self.source_tracking = {}

    def receive(self, count, src=None, denied=False):
        self.frames_received += count
        if denied:
            self.rx_denied += count
        if src is not None:
            self.source_tracking[src] = self.source_tracking.get(src, 0) + count


def _stepped_detector(config=None):
    """A detector driven manually via its internal check (no timer)."""
    sim = Simulator()
    detector = FloodDetector(sim, config=config or DetectorConfig())
    return sim, detector


class TestFloodDetector:
    def test_sustained_flood_detected_with_top_source(self):
        sim, detector = _stepped_detector()
        nic = _FakeNic()
        detector.watch("target", nic)
        detector.start()
        step = detector.config.check_interval
        # 400 frames per 20 ms check = a sustained 20 kpps flood.
        for _ in range(6):
            nic.receive(395, src="10.0.0.4")
            nic.receive(5, src="10.0.0.2")
            sim.run(until=sim.now + step)
        detection = detector.active_detection("target")
        assert detection is not None
        assert detection.reason == "ingress-rate"
        assert detection.top_source == "10.0.0.4"
        assert len(detector.detections) == 1  # one episode, not one per check

    def test_deny_rate_fires_before_ingress(self):
        sim, detector = _stepped_detector()
        nic = _FakeNic()
        detector.watch("target", nic)
        detector.start()
        step = detector.config.check_interval
        # 1 kpps of denies: far below the ingress onset, above deny onset.
        for _ in range(6):
            nic.receive(20, src="10.0.0.4", denied=True)
            sim.run(until=sim.now + step)
        detection = detector.active_detection("target")
        assert detection is not None
        assert detection.reason == REASON_DENY_RATE

    def test_bursty_legitimate_traffic_does_not_flap(self):
        # Table 1's HTTP workload in miniature: short bursts separated by
        # idle gaps.  The EWMA smooths the bursts well under the onset
        # threshold, so no episode ever starts.
        sim, detector = _stepped_detector()
        nic = _FakeNic()
        detector.watch("target", nic)
        detector.start()
        step = detector.config.check_interval
        for tick in range(100):
            if tick % 4 == 0:  # a 4000 pps burst every fourth window
                nic.receive(80, src="10.0.0.2")
            sim.run(until=sim.now + step)
        assert detector.detections == []

    def test_episode_clears_only_after_consecutive_healthy_checks(self):
        sim, detector = _stepped_detector()
        nic = _FakeNic()
        detector.watch("target", nic)
        detector.start()
        step = detector.config.check_interval
        for _ in range(6):
            nic.receive(400, src="10.0.0.4")
            sim.run(until=sim.now + step)
        detection = detector.active_detection("target")
        assert detection is not None
        # One quiet check is not a recovery...
        sim.run(until=sim.now + step)
        assert detection.active
        # ...a relapse resets the healthy streak...
        nic.receive(400, src="10.0.0.4")
        sim.run(until=sim.now + step)
        assert detection.active
        # ...and only clear_checks consecutive quiet checks clear it.
        for _ in range(detector.config.clear_checks + 2):
            sim.run(until=sim.now + step)
        assert not detection.active
        assert detection.cleared_at is not None
        assert len(detector.detections) == 1

    def test_watch_rejects_duplicates(self):
        _, detector = _stepped_detector()
        detector.watch("target", _FakeNic())
        with pytest.raises(ValueError):
            detector.watch("target", _FakeNic())

    def test_config_validation(self):
        with pytest.raises(ValueError):
            DetectorConfig(off_ingress_pps=20_000.0)
        with pytest.raises(ValueError):
            DetectorConfig(clear_checks=0)


def _protected_testbed(actions):
    bed = Testbed(device=DeviceKind.EFW)
    ruleset = padded_ruleset(
        32,
        action_rule=service_rule(
            Action.ALLOW, IpProtocol.UDP, 5001, dst=bed.target.ip
        ),
        name="defense-policy",
    )
    bed.install_target_policy(ruleset)
    controller = bed.enable_defense(DefenseConfig(actions=actions))
    bed.run(0.05)
    return bed, controller


class TestClosedLoop:
    def test_heartbeat_silence_detected_when_card_wedges(self):
        # With deny-rate detection effectively disabled, the wedge itself
        # (silenced heartbeats) is still caught by the backstop signal.
        bed = Testbed(device=DeviceKind.EFW)
        bed.install_target_policy(deny_all())
        controller = bed.enable_defense(
            DefenseConfig(
                detector=DetectorConfig(on_deny_pps=1e9, off_deny_pps=1e9,
                                        on_ingress_pps=1e9, off_ingress_pps=1e9),
                actions=(RestartAgent(),),
            )
        )
        flood = FloodGenerator(bed.attacker, FloodSpec(kind=FloodKind.UDP, dst_port=9))
        flood.start(bed.target.ip, rate_pps=20_000, duration=0.5)
        bed.run(1.0)
        report = controller.report()
        assert report.detections
        assert report.detections[0].reason == REASON_HEARTBEAT
        assert report.agent_restarts >= 1

    def test_quarantine_cuts_the_flood_at_the_switch(self):
        bed, controller = _protected_testbed((QuarantinePort(), RestartAgent()))
        flood = FloodGenerator(bed.attacker, FloodSpec(kind=FloodKind.UDP, dst_port=7777))
        flood.start(bed.target.ip, rate_pps=20_000)
        bed.run(0.5)
        flood.stop()
        assert bed.topology.station_is_quarantined("attacker")
        assert not bed.target.nic.wedged
        report = controller.report()
        assert report.time_to_detect(flood.started_at) < 0.1
        assert report.time_to_mitigate(flood.started_at) < 0.1

    def test_rate_limit_keeps_the_card_under_the_lockup_threshold(self):
        bed, controller = _protected_testbed((EnableRateLimiter(), RestartAgent()))
        flood = FloodGenerator(bed.attacker, FloodSpec(kind=FloodKind.UDP, dst_port=7777))
        flood.start(bed.target.ip, rate_pps=20_000)
        bed.run(1.0)
        flood.stop()
        nic = bed.target.nic
        assert nic.ingress_limiter is not None
        assert nic.ratelimited_drops > 5_000
        assert not nic.wedged

    def test_targeted_deny_rule_repushes_policy(self):
        bed, controller = _protected_testbed((TargetedDenyRule(),))
        flood = FloodGenerator(bed.attacker, FloodSpec(kind=FloodKind.UDP, dst_port=7777))
        flood.start(bed.target.ip, rate_pps=20_000)
        bed.run(0.5)
        flood.stop()
        policy = bed.target.nic.policy
        assert policy is not None
        assert any(r.name == f"deny-{bed.attacker.ip}" for r in policy.rules)
        assert controller.push_outcomes and controller.push_outcomes[-1].acked

    def test_defense_requires_an_embedded_device(self):
        bed = Testbed(device=DeviceKind.STANDARD)
        with pytest.raises(RuntimeError):
            bed.enable_defense()

    def test_double_enable_rejected(self):
        bed = Testbed(device=DeviceKind.EFW)
        bed.enable_defense()
        with pytest.raises(RuntimeError):
            bed.enable_defense()
