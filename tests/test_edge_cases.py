"""Edge-case coverage across modules: error paths, counters, wrap-arounds."""

import pytest

from repro.net.addresses import Ipv4Address, MacAddress
from repro.net.packet import IpProtocol, Ipv4Packet, RawPayload, UdpDatagram


class TestNicEdges:
    def test_send_arp_frame_requires_attachment(self, sim):
        from repro.net.packet import ArpMessage, ArpOp, EthernetFrame, ETHERTYPE_ARP
        from repro.nic.standard import StandardNic

        nic = StandardNic(sim)
        message = ArpMessage(
            op=ArpOp.REQUEST,
            sender_mac=MacAddress.from_index(1),
            sender_ip=Ipv4Address("10.0.0.1"),
            target_mac=MacAddress(0),
            target_ip=Ipv4Address("10.0.0.2"),
        )
        frame = EthernetFrame(
            src_mac=MacAddress.from_index(1),
            dst_mac=MacAddress.from_index(2),
            payload=message,
            ethertype=ETHERTYPE_ARP,
        )
        with pytest.raises(RuntimeError):
            nic.send_arp_frame(frame)

    def test_double_attach_rejected(self, sim, mininet):
        from repro.nic.standard import StandardNic

        nic = mininet["alice"].nic
        port = mininet.topology.add_station("spare")
        with pytest.raises(RuntimeError):
            nic.attach(port)

    def test_double_bind_host_rejected(self, sim, mininet):
        from repro.host.host import Host
        from repro.sim.rng import RngRegistry

        other = Host(
            mininet.sim,
            "other",
            Ipv4Address("192.168.1.99"),
            MacAddress.from_index(99),
            RngRegistry(1),
        )
        with pytest.raises(RuntimeError):
            mininet["alice"].nic.bind_host(other)


class TestIpDispatchEdges:
    def test_unhandled_vpg_packet_counted(self, mininet):
        # A VPG packet reaching a host's stack (no ADF decapsulated it)
        # is dropped and counted, not crashed on.
        alice, bob = mininet["alice"], mininet["bob"]
        packet = Ipv4Packet(
            src=alice.ip,
            dst=bob.ip,
            payload=RawPayload(size=64),
            protocol=IpProtocol.VPG,
        )
        alice.ip_layer.send_packet(packet)
        mininet.run(0.1)
        assert bob.ip_layer.packets_dropped_no_proto == 1

    def test_broadcast_destination_accepted(self, mininet):
        alice, bob = mininet["alice"], mininet["bob"]
        got = []
        bob.udp.bind(7000, lambda *args: got.append(args))
        packet = Ipv4Packet(
            src=alice.ip,
            dst=Ipv4Address("192.168.1.255"),
            payload=UdpDatagram(1, 7000, payload_size=4),
        )
        alice.ip_layer.send_packet(packet)
        mininet.run(0.1)
        assert len(got) == 1


class TestTcpManagerEdges:
    def test_listener_close_is_idempotent(self, mininet):
        bob = mininet["bob"]
        listener = bob.tcp.listen(5001, lambda conn: None)
        listener.close()
        listener.close()
        bob.tcp.listen(5001, lambda conn: None)  # port is free again

    def test_isn_is_within_31_bits(self, mininet):
        for _ in range(100):
            isn = mininet["alice"].tcp.next_isn()
            assert 0 <= isn < 2**31

    def test_connection_count_tracks_lifecycle(self, mininet):
        alice, bob = mininet["alice"], mininet["bob"]
        bob.tcp.listen(5001, lambda conn: None)
        conn = alice.tcp.connect(bob.ip, 5001)
        mininet.run(0.1)
        assert alice.tcp.connection_count == 1
        conn.abort()
        assert alice.tcp.connection_count == 0


class TestIcmpEdges:
    def test_identifier_wraps_without_collision_error(self, mininet):
        alice, bob = mininet["alice"], mininet["bob"]
        alice.icmp._next_identifier = 0xFFFF
        first = alice.icmp.ping(bob.ip)
        second = alice.icmp.ping(bob.ip)
        assert first == 0xFFFF
        assert second == 1  # wrapped

    def test_quoted_error_payload_is_bounded(self, mininet):
        alice, bob = mininet["alice"], mininet["bob"]
        seen = []
        original = alice.deliver_packet
        alice.deliver_packet = lambda packet: (seen.append(packet), original(packet))
        sender = alice.udp.bind(0)
        sender.send(bob.ip, 9999, size=1400)  # big offending datagram
        mininet.run(0.1)
        errors = [p for p in seen if p.icmp is not None]
        assert errors
        # RFC 1122: header + 8 bytes quoted, not the whole datagram.
        assert errors[0].icmp.payload_size <= 28


class TestFloodEdges:
    def test_stop_is_idempotent(self, trinet):
        from repro.apps.flood import FloodGenerator

        flood = FloodGenerator(trinet["mallory"])
        flood.start(trinet["bob"].ip, rate_pps=100)
        flood.stop()
        flood.stop()
        assert not flood.running

    def test_restart_after_stop(self, trinet):
        from repro.apps.flood import FloodGenerator

        flood = FloodGenerator(trinet["mallory"])
        flood.start(trinet["bob"].ip, rate_pps=100, duration=0.05)
        trinet.run(0.1)
        flood.start(trinet["bob"].ip, rate_pps=100, duration=0.05)
        trinet.run(0.1)
        assert flood.packets_sent >= 8


class TestRulesetEdges:
    def test_empty_ruleset_uses_default_and_counts_one(self):
        from repro.firewall.rules import Action, Direction
        from repro.firewall.ruleset import RuleSet
        from repro.net.packet import TcpSegment

        ruleset = RuleSet([], default_action=Action.ALLOW)
        packet = Ipv4Packet(
            src=Ipv4Address("1.1.1.1"),
            dst=Ipv4Address("2.2.2.2"),
            payload=TcpSegment(src_port=1, dst_port=2),
        )
        result = ruleset.evaluate(packet, Direction.INBOUND)
        assert result.allowed
        assert result.rules_traversed == 1  # charged at least one entry

    def test_flow_cache_bounded(self, linear_matcher):
        # Runs on the linear matcher: it builds a fresh MatchResult per
        # walk, so object identity distinguishes cached from recomputed
        # (the compiled path returns shared per-rule results either way).
        from repro.firewall.builders import allow_all
        from repro.firewall.rules import Direction
        from repro.net.packet import TcpSegment

        ruleset = allow_all()
        ruleset.FLOW_CACHE_LIMIT = 0  # simulate a full cache
        packet = Ipv4Packet(
            src=Ipv4Address("1.1.1.1"),
            dst=Ipv4Address("2.2.2.2"),
            payload=TcpSegment(src_port=1, dst_port=2),
        )
        first = ruleset.evaluate(packet, Direction.INBOUND)
        second = ruleset.evaluate(packet, Direction.INBOUND)
        assert first is not second  # nothing cached
        assert first == second  # but equal verdicts


class TestFlowCacheLru:
    """Regression: the flow cache used to stop admitting entries once full.

    A randomized-source flood would fill it, after which *every* flow —
    including long-lived legitimate ones — paid the uncached rule walk
    forever.  The cache is now a bounded LRU: one-shot flood flows evict
    each other while hot flows stay resident.

    These run on the linear matcher so object identity distinguishes a
    cache hit from a recomputed walk (see the ``linear_matcher`` fixture).
    """

    @pytest.fixture(autouse=True)
    def _linear(self, linear_matcher):
        yield

    @staticmethod
    def _packet(src_port):
        from repro.net.packet import TcpSegment

        return Ipv4Packet(
            src=Ipv4Address("1.1.1.1"),
            dst=Ipv4Address("2.2.2.2"),
            payload=TcpSegment(src_port=src_port, dst_port=80),
        )

    def test_fresh_flows_still_cached_after_saturation(self):
        from repro.firewall.builders import allow_all
        from repro.firewall.rules import Direction

        ruleset = allow_all()
        ruleset.FLOW_CACHE_LIMIT = 16
        # Saturate: 3x the cache bound of one-shot flows.
        for port in range(1000, 1048):
            ruleset.evaluate(self._packet(port), Direction.INBOUND)
        assert len(ruleset._flow_cache) == 16
        # A brand-new flow must still be admitted (identity proves a hit).
        fresh = self._packet(5000)
        first = ruleset.evaluate(fresh, Direction.INBOUND)
        second = ruleset.evaluate(fresh, Direction.INBOUND)
        assert first is second

    def test_hot_flow_survives_a_flood(self):
        from repro.firewall.builders import allow_all
        from repro.firewall.rules import Direction

        ruleset = allow_all()
        ruleset.FLOW_CACHE_LIMIT = 16
        hot = self._packet(22)
        hot_result = ruleset.evaluate(hot, Direction.INBOUND)
        # Interleave flood flows with re-use of the hot flow: the hit
        # refreshes its recency, so the flood evicts only its own flows.
        for port in range(2000, 2100):
            ruleset.evaluate(self._packet(port), Direction.INBOUND)
            assert ruleset.evaluate(hot, Direction.INBOUND) is hot_result

    def test_cold_entries_are_the_ones_evicted(self):
        from repro.firewall.builders import allow_all
        from repro.firewall.rules import Direction

        ruleset = allow_all()
        ruleset.FLOW_CACHE_LIMIT = 4
        results = {
            port: ruleset.evaluate(self._packet(port), Direction.INBOUND)
            for port in (1, 2, 3, 4)
        }
        # Touch 1 and 2, then add two new flows: 3 and 4 get evicted.
        assert ruleset.evaluate(self._packet(1), Direction.INBOUND) is results[1]
        assert ruleset.evaluate(self._packet(2), Direction.INBOUND) is results[2]
        ruleset.evaluate(self._packet(5), Direction.INBOUND)
        ruleset.evaluate(self._packet(6), Direction.INBOUND)
        assert ruleset.evaluate(self._packet(1), Direction.INBOUND) is results[1]
        assert ruleset.evaluate(self._packet(2), Direction.INBOUND) is results[2]
        assert ruleset.evaluate(self._packet(3), Direction.INBOUND) is not results[3]

    def test_encrypted_lookups_share_the_bound(self):
        from repro.firewall.builders import allow_all

        ruleset = allow_all()
        ruleset.FLOW_CACHE_LIMIT = 8
        for spi in range(100):
            ruleset.evaluate_encrypted(spi)
        assert len(ruleset._flow_cache) <= 8


class TestPcapEdges:
    def test_truncated_record_rejected(self):
        import io
        import struct

        from repro.net.pcap import PCAP_MAGIC, read_pcap_headers

        header = struct.pack("<IHHiIII", PCAP_MAGIC, 2, 4, 0, 0, 65535, 1)
        broken = io.BytesIO(header + b"\x01\x02\x03")  # partial record header
        with pytest.raises(ValueError):
            read_pcap_headers(broken)

    def test_wrong_linktype_rejected(self):
        import io
        import struct

        from repro.net.pcap import PCAP_MAGIC, read_pcap_headers

        header = struct.pack("<IHHiIII", PCAP_MAGIC, 2, 4, 0, 0, 65535, 101)
        with pytest.raises(ValueError):
            read_pcap_headers(io.BytesIO(header))
