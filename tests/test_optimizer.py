"""Tests for the traffic-aware rule-set optimizer."""

import pytest
from hypothesis import given, strategies as st

from repro.firewall.builders import padded_ruleset, padding_rule, service_rule
from repro.firewall.optimizer import (
    TrafficProfile,
    expected_traversal_cost,
    improvement,
    must_precede,
    optimize,
    profile_ruleset,
)
from repro.firewall.rules import Action, Direction, PortRange, Rule
from repro.firewall.ruleset import RuleSet
from repro.net.addresses import Ipv4Address
from repro.net.packet import IpProtocol, Ipv4Packet, TcpSegment

SRC = Ipv4Address("10.0.0.2")
DST = Ipv4Address("10.0.0.3")


def tcp_packet(dport):
    return Ipv4Packet(
        src=SRC, dst=DST, payload=TcpSegment(src_port=40000, dst_port=dport)
    )


def traffic(counts):
    """counts: {dst_port: packets}"""
    packets = []
    for dport, n in counts.items():
        packets.extend(tcp_packet(dport) for _ in range(n))
    return packets


def allow_padded(depth, action_rule):
    """Padding that shares the action rule's ALLOW action, so reordering
    is semantics-preserving (DENY padding would pin the order — see
    TestMustPrecede)."""
    rules = [padding_rule(index, action=Action.ALLOW) for index in range(depth - 1)]
    rules.append(action_rule)
    return RuleSet(rules)


class TestProfiling:
    def test_counts_first_matches(self):
        ruleset = RuleSet(
            [
                service_rule(Action.ALLOW, IpProtocol.TCP, 80),
                service_rule(Action.ALLOW, IpProtocol.TCP, 443),
            ]
        )
        profile = profile_ruleset(ruleset, traffic({80: 3, 443: 7, 22: 2}))
        assert profile.rule_weights == (3.0, 7.0)
        assert profile.default_weight == 2.0
        assert profile.total == 12

    def test_expected_cost(self):
        rules = [
            service_rule(Action.ALLOW, IpProtocol.TCP, 80),
            service_rule(Action.ALLOW, IpProtocol.TCP, 443),
        ]
        weights = {id(rules[0]): 1.0, id(rules[1]): 1.0}
        # depths 1 and 2 -> mean 1.5
        assert expected_traversal_cost(rules, weights) == pytest.approx(1.5)

    def test_expected_cost_counts_default_as_full_walk(self):
        rules = [service_rule(Action.ALLOW, IpProtocol.TCP, 80)]
        assert expected_traversal_cost(rules, {}, default_weight=4.0) == pytest.approx(1.0)

    def test_profile_length_mismatch_rejected(self):
        ruleset = RuleSet([service_rule(Action.ALLOW, IpProtocol.TCP, 80)])
        with pytest.raises(ValueError):
            optimize(ruleset, TrafficProfile(rule_weights=(), default_weight=0, total=0))


class TestMustPrecede:
    def test_deny_padding_pins_an_overlapping_allow(self):
        # The conservative overlap test keeps a broad ALLOW behind
        # wildcard-port DENY padding: a packet hitting both would flip
        # verdict if they swapped.  This is the paper's §4.3 tension made
        # concrete — deny rules constrain how early services can move.
        ruleset = padded_ruleset(
            8, action_rule=service_rule(Action.ALLOW, IpProtocol.TCP, 5001)
        )
        profile = profile_ruleset(ruleset, traffic({5001: 100}))
        optimized = optimize(ruleset, profile)
        result = optimized.evaluate(tcp_packet(5001), Direction.INBOUND)
        assert result.rules_traversed == 8  # pinned in place

    def test_same_action_rules_commute(self):
        wide = Rule(action=Action.ALLOW, protocol=IpProtocol.TCP)
        narrow = service_rule(Action.ALLOW, IpProtocol.TCP, 80)
        assert not must_precede(wide, narrow)

    def test_overlapping_different_actions_are_ordered(self):
        deny = Rule(action=Action.DENY, protocol=IpProtocol.TCP, dst_ports=PortRange(1, 100))
        allow = Rule(action=Action.ALLOW, protocol=IpProtocol.TCP, dst_ports=PortRange(80, 200))
        assert must_precede(deny, allow)

    def test_disjoint_different_actions_commute(self):
        deny = service_rule(Action.DENY, IpProtocol.TCP, 22)
        allow = service_rule(Action.ALLOW, IpProtocol.TCP, 80)
        assert not must_precede(deny, allow)


class TestOptimize:
    def test_hot_rule_moves_to_front(self):
        ruleset = allow_padded(64, service_rule(Action.ALLOW, IpProtocol.TCP, 5001))
        profile = profile_ruleset(ruleset, traffic({5001: 100}))
        optimized = optimize(ruleset, profile)
        result = optimized.evaluate(tcp_packet(5001), Direction.INBOUND)
        assert result.allowed
        assert result.rules_traversed == 1

    def test_semantics_preserved_on_sample_traffic(self):
        # A rule-set with deliberate overlap: a deny inside an allow range.
        deny = Rule(
            action=Action.DENY,
            protocol=IpProtocol.TCP,
            dst_ports=PortRange.single(8080),
            name="deny-8080",
        )
        allow = Rule(
            action=Action.ALLOW,
            protocol=IpProtocol.TCP,
            dst_ports=PortRange(8000, 8100),
            name="allow-8xxx",
        )
        cold = service_rule(Action.ALLOW, IpProtocol.TCP, 22)
        ruleset = RuleSet([deny, allow, cold])
        sample = traffic({8080: 5, 8050: 50, 22: 1})
        profile = profile_ruleset(ruleset, sample)
        optimized = optimize(ruleset, profile)
        for packet in sample:
            before = ruleset.evaluate(packet, Direction.INBOUND).action
            after = optimized.evaluate(packet, Direction.INBOUND).action
            assert before == after
        # The hot allow rule cannot jump the conflicting deny.
        names = [rule.name for rule in optimized.rules]
        assert names.index("deny-8080") < names.index("allow-8xxx")

    def test_cost_never_increases(self):
        ruleset = allow_padded(32, service_rule(Action.ALLOW, IpProtocol.TCP, 5001))
        profile = profile_ruleset(ruleset, traffic({5001: 10, 9999: 3}))
        original_cost, optimized_cost = improvement(ruleset, optimize(ruleset, profile), profile)
        assert optimized_cost <= original_cost
        assert optimized_cost == pytest.approx(
            (10 * 1 + 3 * 32) / 13
        )  # hot rule first, misses walk everything

    def test_uniform_profile_keeps_original_order(self):
        rules = [service_rule(Action.ALLOW, IpProtocol.TCP, port) for port in (80, 443, 22)]
        ruleset = RuleSet(rules)
        profile = TrafficProfile(rule_weights=(1.0, 1.0, 1.0), default_weight=0.0, total=3)
        optimized = optimize(ruleset, profile)
        assert [r.name for r in optimized.rules] == [r.name for r in rules]

    def test_optimized_ruleset_speeds_up_the_testbed(self):
        # End to end: a badly-ordered policy costs bandwidth on the EFW;
        # the optimizer recovers it.
        from repro.apps.iperf import IperfClient, IperfServer
        from repro.core.testbed import DeviceKind, Testbed

        def measure(policy):
            bed = Testbed(device=DeviceKind.EFW)
            bed.install_target_policy(policy)
            IperfServer(bed.target)
            session = IperfClient(bed.client).start_tcp(bed.target.ip, duration=0.4)
            bed.run(0.45)
            return session.result().mbps

        action = Rule(
            action=Action.ALLOW,
            protocol=IpProtocol.TCP,
            dst_ports=PortRange.single(5001),
            symmetric=True,
        )
        bad = allow_padded(64, action)
        profile = profile_ruleset(bad, traffic({5001: 100}))
        good = optimize(bad, profile)
        slow = measure(bad)
        fast = measure(good)
        assert fast > slow * 1.5

    @given(
        weights=st.lists(
            st.floats(min_value=0, max_value=100), min_size=3, max_size=8
        )
    )
    def test_disjoint_rules_sorted_by_weight_property(self, weights):
        rules = [
            service_rule(Action.ALLOW, IpProtocol.TCP, 1000 + index)
            for index in range(len(weights))
        ]
        ruleset = RuleSet(rules)
        profile = TrafficProfile(
            rule_weights=tuple(weights), default_weight=0.0, total=int(sum(weights))
        )
        optimized = optimize(ruleset, profile)
        weight_of = {id(rule): weight for rule, weight in zip(rules, weights)}
        ordered = [weight_of[id(rule)] for rule in optimized.rules]
        assert ordered == sorted(ordered, reverse=True)
