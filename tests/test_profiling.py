"""Tests for the wall-clock profiler: core math, collection, exporters."""

import pytest

from repro.core.checkpoint import SweepCheckpoint
from repro.core.parallel import SweepExecutor, SweepPointSpec
from repro.experiments.results import deserialize, serialize
from repro.obs.profiling import collect as profile_collect
from repro.obs.profiling.collect import (
    ProfileCollector,
    ProfileConfig,
    ProfileEntry,
    ProfileSnapshot,
    StackEntry,
    merge_snapshots,
    snapshot_profiler,
)
from repro.obs.profiling.core import (
    NULL_PROFILER,
    NullProfiler,
    Profiler,
    derive_category,
)
from repro.obs.profiling.export import collapsed_stacks, hotspot_table
from repro.sim.engine import Simulator
from repro.sim.timer import PeriodicTimer, Timer, TimerWheel


@pytest.fixture(autouse=True)
def _clean_profiling_state():
    """Never leak an active profile collection between tests."""
    yield
    profile_collect.detach_all()


def _fake_clock():
    """A deterministic clock: each call returns the next integer ns."""
    return iter(range(10_000)).__next__


class TestProfilerMath:
    def test_nested_scopes_split_self_and_cumulative(self):
        p = Profiler(clock=_fake_clock())
        p.enter("root")  # t=0
        p.enter("child")  # t=1
        p.exit()  # t=2: child cum=1, self=1
        p.exit()  # t=3: root cum=3, self=3-1=2
        assert p.totals() == {"root": (1, 3, 2), "child": (1, 1, 1)}
        assert p.stack_totals() == {("root",): (1, 2), ("root", "child"): (1, 1)}
        # Self time sums to the root's cumulative time.
        assert p.attributed_ns() == 3

    def test_siblings_accumulate_under_one_parent(self):
        p = Profiler(clock=_fake_clock())
        p.enter("root")  # t=0
        for _ in range(2):
            p.enter("a")  # t=1, t=5
            p.exit()  # t=2, t=6
            p.enter("b")  # t=3, t=7
            p.exit()  # t=4, t=8
        p.exit()  # t=9: root cum=9, children used 4 -> self=5
        assert p.totals() == {"root": (1, 9, 5), "a": (2, 2, 2), "b": (2, 2, 2)}
        assert p.stack_totals() == {
            ("root",): (1, 5),
            ("root", "a"): (2, 2),
            ("root", "b"): (2, 2),
        }

    def test_same_name_on_two_paths_shares_totals_not_stacks(self):
        p = Profiler(clock=_fake_clock())
        p.enter("work")  # t=0, top-level
        p.exit()  # t=1
        p.enter("outer")  # t=2
        p.enter("work")  # t=3, nested
        p.exit()  # t=4
        p.exit()  # t=5
        assert p.totals()["work"] == (2, 2, 2)
        assert p.stack_totals()[("work",)] == (1, 1)
        assert p.stack_totals()[("outer", "work")] == (1, 1)

    def test_deep_recursion_grows_the_frame_pool(self):
        p = Profiler(clock=_fake_clock())
        depth = 200  # deeper than the preallocated pool
        for level in range(depth):
            p.enter(f"level{level}")
        for _ in range(depth):
            p.exit()
        assert p.totals()["level0"][0] == 1
        assert len(p.stack_totals()) == depth

    def test_scope_context_manager_closes_on_exception(self):
        p = Profiler(clock=_fake_clock())
        with pytest.raises(ValueError):
            with p.scope("outer"):
                with p.scope("inner"):
                    raise ValueError("boom")
        assert p.totals()["outer"][0] == 1
        assert p.totals()["inner"][0] == 1
        assert "open=0" in repr(p)

    def test_unwind_settles_dangling_scopes(self):
        p = Profiler(clock=_fake_clock())
        p.enter("a")
        p.enter("b")
        p.unwind()
        assert p.totals()["a"][0] == 1
        assert p.totals()["b"][0] == 1

    def test_clear_drops_everything(self):
        p = Profiler(clock=_fake_clock())
        p.enter("a")
        p.exit()
        p.enter("open")
        p.clear()
        assert p.totals() == {}
        assert p.stack_totals() == {}
        assert p.attributed_ns() == 0
        # A fresh tree works after clear.
        p.enter("b")
        p.exit()
        assert set(p.totals()) == {"b"}

    def test_real_clock_records_positive_times(self):
        p = Profiler()
        with p.scope("real"):
            sum(range(1000))
        calls, cum, self_ns = p.totals()["real"]
        assert calls == 1
        assert cum > 0
        assert self_ns == cum


class _Categorized:
    profile_category = "nic.test"

    def tick(self):
        pass


class _Uncategorized:
    def tick(self):
        pass


def _free_callback():
    pass


class TestCallbackCategories:
    def test_instance_profile_category_wins(self):
        p = Profiler(clock=_fake_clock())
        p.enter_callback(_Categorized().tick)
        p.exit()
        assert set(p.totals()) == {"nic.test"}

    def test_uncategorized_method_derives_class_name_and_caches(self):
        p = Profiler(clock=_fake_clock())
        obj = _Uncategorized()
        p.enter_callback(obj.tick)
        p.exit()
        p.enter_callback(_Uncategorized().tick)  # second instance, same class
        p.exit()
        (name,) = p.totals()
        assert name.endswith("._Uncategorized")
        assert p.totals()[name][0] == 2

    def test_free_function_derives_qualified_name(self):
        p = Profiler(clock=_fake_clock())
        p.enter_callback(_free_callback)
        p.exit()
        (name,) = p.totals()
        assert name.endswith("._free_callback")

    def test_derive_category_strips_repro_prefix(self):
        sim = Simulator()
        assert derive_category(sim.run).startswith("sim.")


class TestNullProfiler:
    def test_disabled_and_inert(self):
        assert NULL_PROFILER.enabled is False
        assert Profiler.enabled is True
        NULL_PROFILER.enter("x")
        NULL_PROFILER.enter_callback(_free_callback)
        NULL_PROFILER.exit()
        NULL_PROFILER.unwind()
        NULL_PROFILER.clear()
        with NULL_PROFILER.scope("y"):
            pass
        assert NULL_PROFILER.totals() == {}
        assert NULL_PROFILER.stack_totals() == {}
        assert NULL_PROFILER.attributed_ns() == 0

    def test_fresh_simulator_uses_the_shared_null(self):
        assert Simulator().profiler is NULL_PROFILER
        assert isinstance(NULL_PROFILER, NullProfiler)


class TestActivation:
    def test_inactive_by_default(self):
        assert not profile_collect.profiling_active()
        assert profile_collect.attach_simulator(Simulator()) is None
        assert profile_collect.deactivate() == []

    def test_activate_attach_deactivate_cycle(self):
        profiler = profile_collect.activate(ProfileConfig(stacks=True))
        assert profile_collect.profiling_active()
        sim = Simulator()
        assert profile_collect.attach_simulator(sim) is profiler
        assert sim.profiler is profiler
        sim.schedule(0.01, _free_callback)
        sim.run(until=0.02)
        snapshots = profile_collect.deactivate()
        assert not profile_collect.profiling_active()
        assert len(snapshots) == 1
        assert snapshots[0].wall_ns > 0
        names = [entry.name for entry in snapshots[0].entries]
        assert any(name.endswith("._free_callback") for name in names)

    def test_double_activate_rejected(self):
        profile_collect.activate()
        with pytest.raises(RuntimeError):
            profile_collect.activate()

    def test_stacks_false_drops_call_paths_keeps_totals(self):
        profiler = profile_collect.activate(ProfileConfig(stacks=False))
        with profiler.scope("only"):
            pass
        (snapshot,) = profile_collect.deactivate()
        assert snapshot.stacks == []
        assert [entry.name for entry in snapshot.entries] == ["only"]

    def test_snapshot_profiler_unwinds_open_scopes(self):
        p = Profiler(clock=_fake_clock())
        p.enter("left-open")
        snapshot = snapshot_profiler(p, wall_ns=100)
        assert snapshot.entries[0].calls == 1
        assert snapshot.wall_ns == 100


class TestSnapshotMerging:
    def test_merge_sums_by_name_and_path(self):
        a = ProfileSnapshot(
            entries=[ProfileEntry(name="x", calls=1, cum_ns=10, self_ns=10)],
            stacks=[StackEntry(path=["x"], calls=1, self_ns=10)],
            wall_ns=20,
        )
        b = ProfileSnapshot(
            entries=[
                ProfileEntry(name="x", calls=2, cum_ns=5, self_ns=4),
                ProfileEntry(name="y", calls=1, cum_ns=1, self_ns=1),
            ],
            stacks=[
                StackEntry(path=["x"], calls=2, self_ns=4),
                StackEntry(path=["x", "y"], calls=1, self_ns=1),
            ],
            wall_ns=15,
        )
        merged = merge_snapshots([a, b])
        assert merged.wall_ns == 35
        assert {e.name: (e.calls, e.cum_ns, e.self_ns) for e in merged.entries} == {
            "x": (3, 15, 14),
            "y": (1, 1, 1),
        }
        assert {tuple(s.path): (s.calls, s.self_ns) for s in merged.stacks} == {
            ("x",): (3, 14),
            ("x", "y"): (1, 1),
        }
        assert merged.attributed_ns() == 15
        assert merged.coverage() == pytest.approx(15 / 35)

    def test_empty_merge_and_zero_wall_coverage(self):
        merged = merge_snapshots([])
        assert merged.entries == [] and merged.stacks == []
        assert merged.coverage() == 0.0


def _profiled_point(count: int) -> int:
    """A sweep point whose simulator self-profiles (picklable)."""
    sim = Simulator()
    assert profile_collect.attach_simulator(sim) is not None, (
        "executor should activate profiling"
    )
    obj = _Categorized()
    for step in range(count):
        sim.schedule(0.01 * (step + 1), obj.tick)
    sim.run(until=0.01 * count + 0.005)
    return count


def _specs():
    return [
        SweepPointSpec(
            label=f"point count={count}", fn=_profiled_point, kwargs={"count": count}
        )
        for count in (3, 5, 2, 4)
    ]


def _structure(collector: ProfileCollector):
    """Times vary run to run; the merged *structure* must not."""
    return [
        (
            point.label,
            [
                [(entry.name, entry.calls) for entry in snap.entries]
                for snap in point.snapshots
            ],
            [
                [(tuple(stack.path), stack.calls) for stack in snap.stacks]
                for snap in point.snapshots
            ],
        )
        for point in collector.points
    ]


class TestExecutorIntegration:
    def test_serial_executor_deposits_points_in_spec_order(self):
        collector = ProfileCollector(ProfileConfig(stacks=True))
        values = SweepExecutor(jobs=1, profile=collector).run(_specs())
        assert values == [3, 5, 2, 4]
        assert [point.label for point in collector.points] == [
            "point count=3",
            "point count=5",
            "point count=2",
            "point count=4",
        ]
        snap = collector.points[1].snapshots[0]
        entry = next(e for e in snap.entries if e.name == "nic.test")
        assert entry.calls == 5

    def test_jobs_1_and_jobs_4_collect_identical_structure(self):
        serial = ProfileCollector()
        SweepExecutor(jobs=1, profile=serial).run(_specs())
        parallel = ProfileCollector()
        SweepExecutor(jobs=4, profile=parallel).run(_specs())
        assert _structure(serial) == _structure(parallel)
        aggregated = parallel.aggregate()
        assert aggregated.wall_ns > 0

    def test_profiling_is_inactive_again_after_a_run(self):
        SweepExecutor(jobs=1, profile=ProfileCollector()).run(_specs()[:1])
        assert not profile_collect.profiling_active()

    def test_collector_clear_and_len(self):
        collector = ProfileCollector()
        SweepExecutor(jobs=1, profile=collector).run(_specs()[:2])
        assert len(collector) == 2
        collector.clear()
        assert len(collector) == 0


class TestSerialization:
    def test_experiment_profile_round_trips_through_the_envelope(self):
        collector = ProfileCollector(ProfileConfig(stacks=True, top=10))
        SweepExecutor(jobs=1, profile=collector).run(_specs()[:2])
        profile = collector.experiment("unit")
        payload = serialize(profile)
        restored = deserialize(payload)
        assert serialize(restored) == payload
        assert restored.experiment_id == "unit"
        assert restored.config.top == 10
        assert [p.label for p in restored.points] == [
            p.label for p in profile.points
        ]

    def test_spec_key_omits_profile_when_absent(self):
        spec = SweepPointSpec(label="p", fn=_profiled_point, kwargs={"count": 1})
        without = SweepCheckpoint.spec_key(spec, None, None)
        explicit_none = SweepCheckpoint.spec_key(spec, None, None, None)
        with_profile = SweepCheckpoint.spec_key(spec, None, None, ProfileConfig())
        # Pre-profiler checkpoints keep matching post-profiler runs...
        assert without == explicit_none
        # ...but a profiled run is keyed distinctly.
        assert with_profile != without


class TestExporters:
    def _snapshot(self):
        return ProfileSnapshot(
            entries=[
                ProfileEntry(name="nic.efw", calls=100, cum_ns=60_000, self_ns=50_000),
                ProfileEntry(name="link", calls=50, cum_ns=20_000, self_ns=20_000),
                ProfileEntry(name="apps", calls=10, cum_ns=10_000, self_ns=10_000),
            ],
            stacks=[
                StackEntry(path=["nic.efw"], calls=100, self_ns=50_000),
                StackEntry(path=["nic.efw", "firewall"], calls=40, self_ns=9_000),
                StackEntry(path=["link"], calls=50, self_ns=500),
            ],
            wall_ns=100_000,
        )

    def test_hotspot_table_sorts_by_self_time_and_reports_coverage(self):
        table = hotspot_table(self._snapshot(), top=2)
        lines = table.splitlines()
        assert lines[0].startswith("Hotspots")
        body = [line for line in lines if line.startswith(("nic.efw", "link", "apps"))]
        assert [line.split()[0] for line in body] == ["nic.efw", "link"]
        assert "... 1 more component(s)" in table
        assert "(80.0% coverage)" in table

    def test_hotspot_table_without_wall_clock(self):
        snapshot = self._snapshot()
        snapshot.wall_ns = 0
        assert "no wall-clock baseline" in hotspot_table(snapshot)

    def test_collapsed_stacks_emit_one_weighted_line_per_path(self):
        lines = collapsed_stacks(self._snapshot()).splitlines()
        assert lines[0] == "nic.efw 50"
        assert lines[1] == "nic.efw;firewall 9"
        # Sub-microsecond paths keep a minimal weight of 1.
        assert lines[2] == "link 1"

    def test_exporters_accept_experiment_profiles(self):
        collector = ProfileCollector()
        SweepExecutor(jobs=1, profile=collector).run(_specs()[:1])
        profile = collector.experiment("unit")
        assert "nic.test" in hotspot_table(profile)
        # Dispatched callbacks nest under the kernel's sim.run root scope.
        assert any(
            line.startswith("sim.run;nic.test ")
            for line in collapsed_stacks(profile).splitlines()
        )


@pytest.mark.slow
class TestCoverageAcceptance:
    def test_fig3a_quick_attributes_most_of_the_wall_clock(self):
        """The hotspot report must explain >=90% of a real run's time."""
        from repro.experiments import REGISTRY, RunConfig

        collector = ProfileCollector(ProfileConfig(stacks=True))
        REGISTRY["fig3a"].run(RunConfig(preset="quick", jobs=1, profile=collector))
        aggregated = collector.aggregate()
        assert aggregated.coverage() >= 0.90
        names = {entry.name for entry in aggregated.entries}
        # The components the paper's claim is about are all attributed.
        assert "sim.run" in names
        assert any(name.startswith("nic.") for name in names)


class _WheelTarget:
    profile_category = "defense.wheel-target"

    def __init__(self):
        self.fired = 0

    def tick(self):
        self.fired += 1


class TestTimerAttribution:
    def test_timer_bills_the_wrapped_callback(self):
        sim = Simulator()
        target = _WheelTarget()
        timer = Timer(sim, target.tick)
        assert timer.profile_category == "defense.wheel-target"
        # Cached: the second read returns the same resolved name.
        assert timer.profile_category == "defense.wheel-target"

    def test_periodic_timer_bills_the_wrapped_callback(self):
        sim = Simulator()
        timer = PeriodicTimer(sim, 0.1, _WheelTarget().tick)
        assert timer.profile_category == "defense.wheel-target"

    def test_wheel_entries_attributed_to_their_component(self):
        sim = Simulator()
        profiler = Profiler()
        sim.profiler = profiler
        wheel = TimerWheel(sim, tick=0.01)
        target = _WheelTarget()
        wheel.schedule_periodic(0.01, target.tick)
        sim.run(until=0.055)
        assert target.fired == 5
        assert profiler.totals()["defense.wheel-target"][0] == 5
        # The wheel's own bookkeeping is billed to the kernel timer scope.
        assert "sim.timer" in profiler.totals()
