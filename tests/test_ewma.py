"""Tests for the EWMA rate estimator the flood detector watches."""

import pytest

from repro.obs.ewma import RateEwma


class TestConstruction:
    def test_alpha_bounds(self):
        for bad in (0.0, -0.1, 1.5):
            with pytest.raises(ValueError):
                RateEwma(alpha=bad)
        # The boundary alpha=1.0 (no smoothing) is allowed.
        assert RateEwma(alpha=1.0).alpha == 1.0

    def test_starts_at_zero(self):
        assert RateEwma().rate == 0.0


class TestUpdates:
    def test_first_sample_only_establishes_the_baseline(self):
        ewma = RateEwma(alpha=0.5)
        assert ewma.update(1.0, 100.0) == 0.0
        assert ewma.rate == 0.0

    def test_second_sample_yields_the_first_rate(self):
        ewma = RateEwma(alpha=0.5)
        ewma.update(0.0, 0.0)
        # 50 events over 0.5 s = 100/s; EWMA from 0: 0 + 0.5*(100-0) = 50.
        assert ewma.update(0.5, 50.0) == pytest.approx(50.0)

    def test_smoothing_converges_on_a_steady_rate(self):
        ewma = RateEwma(alpha=0.5)
        for step in range(40):
            rate = ewma.update(step * 1.0, step * 200.0)
        assert rate == pytest.approx(200.0, rel=1e-6)

    def test_alpha_one_tracks_the_instantaneous_rate(self):
        ewma = RateEwma(alpha=1.0)
        ewma.update(0.0, 0.0)
        ewma.update(1.0, 10.0)
        assert ewma.rate == pytest.approx(10.0)
        ewma.update(2.0, 1010.0)
        assert ewma.rate == pytest.approx(1000.0)

    def test_irregular_sample_spacing_normalizes_by_elapsed_time(self):
        ewma = RateEwma(alpha=1.0)
        ewma.update(0.0, 0.0)
        ewma.update(0.1, 10.0)  # 100/s over a short interval
        assert ewma.rate == pytest.approx(100.0)
        ewma.update(2.1, 210.0)  # same 100/s over a long one
        assert ewma.rate == pytest.approx(100.0)

    def test_zero_or_negative_elapsed_keeps_the_rate(self):
        ewma = RateEwma(alpha=0.5)
        ewma.update(0.0, 0.0)
        ewma.update(1.0, 100.0)
        before = ewma.rate
        # Same timestamp and a clock step backwards both change nothing.
        assert ewma.update(1.0, 500.0) == before
        assert ewma.update(0.5, 900.0) == before
        assert ewma.rate == before

    def test_counter_reset_clamps_to_a_zero_sample(self):
        ewma = RateEwma(alpha=1.0)
        ewma.update(0.0, 1000.0)
        # The counter wrapped/reset below its last total: the negative
        # delta is clamped so the rate decays instead of going negative.
        ewma.update(1.0, 10.0)
        assert ewma.rate == 0.0

    def test_update_returns_the_stored_rate(self):
        ewma = RateEwma(alpha=0.25)
        ewma.update(0.0, 0.0)
        returned = ewma.update(2.0, 80.0)
        assert returned == ewma.rate == pytest.approx(10.0)


class TestReset:
    def test_reset_forgets_history_and_baseline(self):
        ewma = RateEwma(alpha=0.5)
        ewma.update(0.0, 0.0)
        ewma.update(1.0, 100.0)
        assert ewma.rate > 0.0
        ewma.reset()
        assert ewma.rate == 0.0
        # The next update is a baseline again, not a rate sample.
        assert ewma.update(5.0, 1000.0) == 0.0
        assert ewma.update(6.0, 1050.0) == pytest.approx(25.0)
