"""Tests for the parallel sweep executor (repro.core.parallel).

The executor's contract: results are returned in spec order and are
identical no matter how many worker processes run the points; progress
is emitted in the parent; anything that cannot run in a pool degrades
to the serial loop instead of failing.
"""

from __future__ import annotations

import pytest

from repro.core.parallel import (
    JOBS_ENV_VAR,
    SweepError,
    SweepExecutor,
    SweepPointSpec,
    derive_seed,
    resolve_jobs,
)
from repro.core.sweeps import Sweep


def _square(x):
    return x * x


def _mul(a, b):
    return a * b


def _fail(message):
    raise ValueError(message)


def _specs(values):
    return [
        SweepPointSpec(label=f"point x={value}", fn=_square, kwargs={"x": value})
        for value in values
    ]


class TestResolveJobs:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "7")
        assert resolve_jobs(3) == 3

    def test_explicit_zero_or_negative_raises(self):
        with pytest.raises(ValueError, match="jobs"):
            resolve_jobs(0)
        with pytest.raises(ValueError, match="jobs"):
            resolve_jobs(-4)

    def test_env_zero_or_negative_raises(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "0")
        with pytest.raises(ValueError, match=JOBS_ENV_VAR):
            resolve_jobs()
        monkeypatch.setenv(JOBS_ENV_VAR, "-2")
        with pytest.raises(ValueError, match=JOBS_ENV_VAR):
            resolve_jobs()

    def test_env_var_used_when_no_argument(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "5")
        assert resolve_jobs() == 5

    def test_invalid_env_var_raises(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV_VAR, "many")
        with pytest.raises(ValueError):
            resolve_jobs()

    def test_defaults_to_cpu_count(self, monkeypatch):
        import os

        monkeypatch.delenv(JOBS_ENV_VAR, raising=False)
        assert resolve_jobs() == (os.cpu_count() or 1)


class TestDeriveSeed:
    def test_stable(self):
        assert derive_seed(1, 0) == derive_seed(1, 0)

    def test_distinct_across_indices_and_bases(self):
        seeds = {derive_seed(base, index) for base in range(4) for index in range(64)}
        assert len(seeds) == 4 * 64

    def test_fits_in_31_bits(self):
        for index in range(100):
            assert 0 <= derive_seed(12345, index) < 2**31


class TestSweepExecutor:
    def test_serial_results_in_spec_order(self):
        assert SweepExecutor(jobs=1).run(_specs([3, 1, 2])) == [9, 1, 4]

    def test_parallel_results_match_serial(self):
        specs = _specs(range(10))
        serial = SweepExecutor(jobs=1).run(specs)
        parallel = SweepExecutor(jobs=4).run(specs)
        assert parallel == serial == [x * x for x in range(10)]

    def test_empty_spec_list(self):
        assert SweepExecutor(jobs=4).run([]) == []

    def test_progress_emitted_in_parent_serial(self):
        lines = []
        SweepExecutor(jobs=1, progress=lines.append).run(_specs([1, 2]))
        assert lines == ["[1/2] point x=1", "[2/2] point x=2"]

    def test_progress_emitted_in_parent_parallel(self):
        lines = []
        SweepExecutor(jobs=4, progress=lines.append).run(_specs([1, 2, 3]))
        assert lines == ["[1/3] point x=1", "[2/3] point x=2", "[3/3] point x=3"]

    def test_unpicklable_fn_falls_back_to_serial(self):
        captured = []
        specs = [
            SweepPointSpec(label=f"x={x}", fn=lambda x: captured.append(x) or x, kwargs={"x": x})
            for x in (1, 2)
        ]
        assert SweepExecutor(jobs=4).run(specs) == [1, 2]
        # The closure observed the calls: proof the points ran in-process.
        assert captured == [1, 2]

    def test_worker_exception_propagates_serial(self):
        specs = [
            SweepPointSpec(label="ok", fn=_square, kwargs={"x": 2}),
            SweepPointSpec(label="boom", fn=_fail, kwargs={"message": "bad point"}),
        ]
        with pytest.raises(SweepError, match="bad point") as excinfo:
            SweepExecutor(jobs=1).run(specs)
        # The error names the failing point and preserves completed work.
        assert "boom" in str(excinfo.value)
        assert "point 2" in str(excinfo.value)
        assert excinfo.value.failure.label == "boom"
        assert excinfo.value.failure.index == 1
        assert [(p.index, p.label, p.value) for p in excinfo.value.completed] == [
            (0, "ok", 4)
        ]

    def test_worker_exception_propagates_parallel(self):
        specs = [
            SweepPointSpec(label="ok", fn=_square, kwargs={"x": 2}),
            SweepPointSpec(label="boom", fn=_fail, kwargs={"message": "bad point"}),
        ]
        with pytest.raises(SweepError, match="bad point") as excinfo:
            SweepExecutor(jobs=2).run(specs)
        assert excinfo.value.failure.label == "boom"
        assert (0, "ok", 4) in [
            (p.index, p.label, p.value) for p in excinfo.value.completed
        ]

    def test_single_spec_runs_inline(self):
        assert SweepExecutor(jobs=8).run(_specs([5])) == [25]


class TestSweepJobs:
    def test_parallel_sweep_matches_serial(self):
        grid = {"a": [1, 2, 3], "b": [10, 20]}
        serial = Sweep(_mul, jobs=1).run(grid)
        parallel = Sweep(_mul, jobs=4).run(grid)
        assert [point.result for point in parallel] == [point.result for point in serial]
        assert [point.params for point in parallel] == [point.params for point in serial]

    def test_lambda_sweep_still_works_with_jobs(self):
        points = Sweep(lambda a: a * 10, jobs=4).run({"a": [3, 4]})
        assert [point.result for point in points] == [30, 40]
