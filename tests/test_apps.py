"""Tests for the measurement applications: iperf, httpd/http_load, flood."""

import math

import pytest

#: Full end-to-end regenerations; excluded from the default fast tier
#: (see [tool.pytest.ini_options] in pyproject.toml).
pytestmark = pytest.mark.slow

from repro.apps.flood import FloodGenerator, FloodKind, FloodSpec
from repro.apps.http_load import HttpLoadClient
from repro.apps.httpd import HttpServer
from repro.apps.iperf import IperfClient, IperfServer
from repro.net.addresses import Ipv4Address


class TestIperfTcp:
    def test_measures_line_rate_goodput(self, mininet):
        alice, bob = mininet["alice"], mininet["bob"]
        server = IperfServer(bob)
        session = IperfClient(alice).start_tcp(bob.ip, duration=1.0)
        mininet.run(1.1)
        result = session.result()
        assert 90 < result.mbps < 96
        assert not result.connect_failed

    def test_result_before_window_end_rejected(self, mininet):
        alice, bob = mininet["alice"], mininet["bob"]
        IperfServer(bob)
        session = IperfClient(alice).start_tcp(bob.ip, duration=1.0)
        mininet.run(0.3)
        with pytest.raises(RuntimeError):
            session.result()

    def test_connect_failure_reports_zero_bandwidth(self, mininet):
        alice = mininet["alice"]
        # No server anywhere: connect is refused by RST.
        session = IperfClient(alice).start_tcp(mininet["bob"].ip, duration=0.5)
        mininet.run(0.6)
        result = session.result()
        assert result.connect_failed
        assert result.mbps == 0.0

    def test_server_counts_connections(self, mininet):
        alice, bob = mininet["alice"], mininet["bob"]
        server = IperfServer(bob)
        session = IperfClient(alice).start_tcp(bob.ip, duration=0.3)
        mininet.run(0.4)
        assert server.connections_accepted == 1
        assert server.tcp_bytes_received > 0


class TestIperfUdp:
    def test_rate_and_loss_accounting(self, mininet):
        alice, bob = mininet["alice"], mininet["bob"]
        server = IperfServer(bob)
        session = IperfClient(alice).start_udp(server, rate_pps=1000, duration=1.0)
        mininet.run(1.1)
        result = session.result()
        assert result.datagrams_sent == pytest.approx(1000, rel=0.02)
        assert result.loss_ratio < 0.01
        # 1470-byte payloads at 1000 pps ~ 11.8 Mbps of payload.
        assert result.mbps == pytest.approx(1470 * 8 * 1000 / 1e6, rel=0.05)

    def test_bad_rate_rejected(self, mininet):
        alice, bob = mininet["alice"], mininet["bob"]
        server = IperfServer(bob)
        with pytest.raises(ValueError):
            IperfClient(alice).start_udp(server, rate_pps=0)

    def test_server_close_releases_ports(self, mininet):
        bob = mininet["bob"]
        server = IperfServer(bob)
        server.close()
        IperfServer(bob)  # rebind works


class TestHttp:
    def test_single_fetch_roundtrip(self, mininet):
        alice, bob = mininet["alice"], mininet["bob"]
        HttpServer(bob, pages={"/": 4096})
        session = HttpLoadClient(alice).start(bob.ip, duration=0.5)
        mininet.run(0.6)
        result = session.result()
        assert result.completed > 10
        assert result.failures == 0
        first = result.fetches[0]
        assert first.bytes_received > 4096  # header + body
        assert first.connect_time < 0.005
        assert first.first_response_time > first.connect_time

    def test_fetch_rate_scales_with_page_size(self, mininet):
        alice, bob = mininet["alice"], mininet["bob"]
        HttpServer(bob, port=80, pages={"/": 1024})
        HttpServer(bob, port=8080, pages={"/": 65536})
        small = HttpLoadClient(alice).start(bob.ip, port=80, duration=0.5)
        mininet.run(0.6)
        big = HttpLoadClient(alice).start(bob.ip, port=8080, duration=0.5)
        mininet.run(0.7)
        assert small.result().fetches_per_second > big.result().fetches_per_second

    def test_unknown_path_counts_404(self, mininet):
        alice, bob = mininet["alice"], mininet["bob"]
        server = HttpServer(bob)
        session = HttpLoadClient(alice).start(bob.ip, path="/missing", duration=0.3)
        mininet.run(0.4)
        assert server.requests_not_found > 0
        # 404s still complete as fetches (http_load counts bytes).
        assert session.result().completed > 0

    def test_requests_served_counter(self, mininet):
        alice, bob = mininet["alice"], mininet["bob"]
        server = HttpServer(bob)
        session = HttpLoadClient(alice).start(bob.ip, duration=0.3)
        mininet.run(0.4)
        assert server.requests_served == session.result().completed

    def test_one_connection_at_a_time(self, mininet):
        alice, bob = mininet["alice"], mininet["bob"]
        HttpServer(bob)
        session = HttpLoadClient(alice).start(bob.ip, duration=0.3)
        mininet.run(0.4)
        fetches = session.result().fetches
        # Each fetch starts only after the previous completed.
        for earlier, later in zip(fetches, fetches[1:]):
            assert later.started_at >= earlier.completed_at

    def test_mean_latency_metrics_are_finite(self, mininet):
        alice, bob = mininet["alice"], mininet["bob"]
        HttpServer(bob)
        session = HttpLoadClient(alice).start(bob.ip, duration=0.3)
        mininet.run(0.4)
        result = session.result()
        assert math.isfinite(result.mean_connect_ms)
        assert math.isfinite(result.mean_first_response_ms)
        assert result.mean_first_response_ms > result.mean_connect_ms


class TestFloodGenerator:
    def test_rate_achieved(self, trinet):
        mallory, bob = trinet["mallory"], trinet["bob"]
        flood = FloodGenerator(mallory)
        flood.start(bob.ip, rate_pps=5000, duration=0.5)
        trinet.run(0.6)
        assert flood.packets_sent == pytest.approx(2500, rel=0.02)
        assert not flood.running

    def test_default_packets_are_minimum_frames(self, trinet):
        mallory, bob = trinet["mallory"], trinet["bob"]
        from repro.net.capture import CaptureTap

        tap = CaptureTap()
        trinet.topology.link_for("bob").add_tap(tap)
        flood = FloodGenerator(mallory)
        flood.start(bob.ip, rate_pps=1000, duration=0.1)
        trinet.run(0.2)
        assert tap.frames
        assert all(captured.wire_size == 64 for captured in tap.frames)

    def test_tcp_flood_elicits_rst_responses(self, trinet):
        mallory, bob = trinet["mallory"], trinet["bob"]
        flood = FloodGenerator(mallory, FloodSpec(kind=FloodKind.TCP_ACK, dst_port=5001))
        flood.start(bob.ip, rate_pps=1000, duration=0.1)
        trinet.run(0.2)
        assert bob.tcp.rst_sent == flood.packets_sent

    def test_udp_flood_elicits_rate_limited_icmp(self, trinet):
        mallory, bob = trinet["mallory"], trinet["bob"]
        flood = FloodGenerator(mallory, FloodSpec(kind=FloodKind.UDP, dst_port=9999))
        flood.start(bob.ip, rate_pps=1000, duration=0.2)
        trinet.run(0.3)
        assert bob.icmp.errors_sent < flood.packets_sent
        assert bob.icmp.errors_suppressed > 0

    def test_syn_flood_fills_listener_backlog(self, trinet):
        mallory, bob = trinet["mallory"], trinet["bob"]
        listener = bob.tcp.listen(5001, lambda conn: None, backlog=16)
        flood = FloodGenerator(
            mallory,
            FloodSpec(kind=FloodKind.TCP_SYN, dst_port=5001, randomize_src=True),
        )
        flood.start(bob.ip, rate_pps=2000, duration=0.2)
        trinet.run(0.3)
        assert listener.half_open == 16
        assert listener.dropped_syn_backlog > 0

    def test_icmp_echo_flood_answered(self, trinet):
        mallory, bob = trinet["mallory"], trinet["bob"]
        flood = FloodGenerator(mallory, FloodSpec(kind=FloodKind.ICMP_ECHO))
        flood.start(bob.ip, rate_pps=500, duration=0.1)
        trinet.run(0.2)
        assert bob.icmp.echo_requests_received == flood.packets_sent

    def test_fixed_spoofed_source(self, trinet):
        mallory, bob = trinet["mallory"], trinet["bob"]
        seen = []
        original = bob.deliver_packet
        bob.deliver_packet = lambda packet: (seen.append(packet.src), original(packet))
        spec = FloodSpec(kind=FloodKind.UDP, spoof_src=Ipv4Address("1.1.1.1"))
        flood = FloodGenerator(mallory, spec)
        flood.start(bob.ip, rate_pps=100, duration=0.05)
        trinet.run(0.1)
        assert set(seen) == {Ipv4Address("1.1.1.1")}

    def test_randomized_sources_vary(self, trinet):
        mallory, bob = trinet["mallory"], trinet["bob"]
        seen = []
        original = bob.deliver_packet
        bob.deliver_packet = lambda packet: (seen.append(packet.src), original(packet))
        flood = FloodGenerator(mallory, FloodSpec(kind=FloodKind.UDP, randomize_src=True))
        flood.start(bob.ip, rate_pps=1000, duration=0.05)
        trinet.run(0.1)
        assert len(set(seen)) > 10

    def test_start_twice_rejected(self, trinet):
        mallory, bob = trinet["mallory"], trinet["bob"]
        flood = FloodGenerator(mallory)
        flood.start(bob.ip, rate_pps=100)
        with pytest.raises(RuntimeError):
            flood.start(bob.ip, rate_pps=100)
        flood.stop()

    def test_bad_rate_rejected(self, trinet):
        flood = FloodGenerator(trinet["mallory"])
        with pytest.raises(ValueError):
            flood.start(trinet["bob"].ip, rate_pps=0)

    def test_achieved_rate_bounded_by_wire(self, trinet):
        # Ask for 1M pps; the 100 Mbps link caps near 148.8k pps.
        mallory, bob = trinet["mallory"], trinet["bob"]
        from repro.net.capture import CaptureTap

        # Count only the flood direction; the tap sees bob's RST
        # responses too (both directions cross the same link).
        tap = CaptureTap(
            frame_filter=lambda frame: frame.ip is not None and frame.ip.dst == bob.ip
        )
        trinet.topology.link_for("bob").add_tap(tap)
        flood = FloodGenerator(mallory)
        flood.start(bob.ip, rate_pps=1_000_000, duration=0.1)
        trinet.run(0.25)
        delivered_rate = tap.rate_pps(0.02, 0.1)  # steady-state window
        assert 100_000 < delivered_rate < 150_000
