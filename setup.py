"""Setuptools shim.

The offline environment lacks the ``wheel`` package, so PEP 660 editable
installs (which must build a wheel) fail.  This shim lets
``pip install -e . --no-use-pep517 --no-build-isolation`` fall back to the
legacy ``setup.py develop`` path.  All project metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
